// The execution engine of the cbtc::api façade.
//
// `engine::run` executes one scenario instance end to end: deploy
// nodes, run the selected method (centralized oracle, distributed
// protocol on the event simulator, or a position-based baseline),
// apply the optimizations, and measure every requested metric.
//
// `engine::run_dynamic` composes a scenario with a sim_spec and plays
// the full Section 4 model: per-node reconfiguration agents (CBTC +
// NDP beaconing + the join/leave/aChange rules) on the event
// simulator, with mobility drivers and crash/restart injection, and
// periodic metric sampling into a dynamic_report.
//
// `engine::run_lifetime` runs the battery-attrition experiment of the
// paper's Discussion over the scenario's topology.
//
// The batch entry points fan a seed range across a thread pool (each
// instance is an independent, pure computation) and reduce reports
// into fixed-size seed-block partials that are merged in block order,
// so the aggregate statistics are bitwise identical regardless of
// `num_threads` and peak memory is bounded by the block partials, not
// the seed count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "api/report.h"
#include "api/scenario.h"
#include "api/sim_spec.h"

namespace cbtc::api {

/// Rounds until first death / 25% dead / the survivors' max-power
/// graph partitions (capped at lifetime_spec::max_rounds).
struct lifetime_report {
  double first_death{0.0};
  double quarter_dead{0.0};
  double field_partition{0.0};
};

/// Aggregate statistics over a batch of lifetime runs (same
/// accumulate/merge contract as batch_report).
struct lifetime_batch_report {
  std::uint64_t runs{0};
  exp::summary first_death;
  exp::summary quarter_dead;
  exp::summary field_partition;

  void accumulate(const lifetime_report& r);
  void merge(const lifetime_batch_report& other);
};

/// A contiguous range of seed-block indices within a batch (block `b`
/// covers seeds `[first + b*batch_block_size, ...)` of the full seed
/// range — indices are always relative to the whole batch, so a shard
/// running a sub-range produces the same partials the full run would).
struct block_range {
  std::uint64_t first{0};
  std::uint64_t count{0};
};

class engine {
 public:
  /// Seeds per streaming partial. Fixed — independent of thread count,
  /// shard count, and shard failures — so the block structure, and
  /// hence the block-ordered merge, is bitwise identical no matter who
  /// ran which block where.
  static constexpr std::uint64_t batch_block_size = 16;

  /// Number of seed blocks a batch over `seeds` decomposes into.
  [[nodiscard]] static std::uint64_t num_batch_blocks(seed_range seeds) {
    return (seeds.count + batch_block_size - 1) / batch_block_size;
  }

  /// Runs instance `seed` of the scenario.
  [[nodiscard]] run_report run(const scenario_spec& spec, std::uint64_t seed) const;

  /// Runs the scenario's canonical instance (seed 0).
  [[nodiscard]] run_report run(const scenario_spec& spec) const { return run(spec, 0); }

  /// Runs every seed in `seeds` and returns the reports in seed order.
  /// `num_threads` == 0 picks the hardware concurrency. Results do not
  /// depend on the thread count.
  [[nodiscard]] std::vector<run_report> run_all(const scenario_spec& spec, seed_range seeds,
                                                unsigned num_threads = 0) const;

  /// Streaming multi-seed reduction into aggregate statistics (memory
  /// bounded by seed-block partials; see the header comment).
  [[nodiscard]] batch_report run_batch(const scenario_spec& spec, seed_range seeds,
                                       unsigned num_threads = 0) const;

  /// Runs one dynamic (churn / mobility) instance of the scenario.
  [[nodiscard]] dynamic_report run_dynamic(const scenario_spec& spec, const sim_spec& sim,
                                           std::uint64_t seed = 0) const;

  /// Streaming multi-seed dynamic batch (same determinism and memory
  /// guarantees as the static overload).
  [[nodiscard]] dynamic_batch_report run_batch(const scenario_spec& spec, const sim_spec& sim,
                                               seed_range seeds, unsigned num_threads = 0) const;

  /// Runs the battery-attrition lifetime experiment on instance `seed`:
  /// builds the scenario's topology, then drains batteries round by
  /// round (beacons + routed flows) until the field partitions.
  [[nodiscard]] lifetime_report run_lifetime(const scenario_spec& spec, const lifetime_spec& life,
                                             std::uint64_t seed = 0) const;

  /// Streaming multi-seed lifetime batch (same determinism and memory
  /// guarantees as the static overload).
  [[nodiscard]] lifetime_batch_report run_batch(const scenario_spec& spec,
                                                const lifetime_spec& life, seed_range seeds,
                                                unsigned num_threads = 0) const;

  // ---- block-granular batch execution -------------------------------
  //
  // The building blocks `run_batch` is made of, exposed so a network
  // shard can execute a sub-range of a batch's seed blocks and stream
  // each finished partial out: the sink receives (block index, block
  // partial) once per block, serialized by an internal mutex but in
  // completion order — callers that need the batch aggregate must
  // collect and merge partials in block-index order, which is exactly
  // what `run_batch` and the shard dispatcher do. `blocks` indices are
  // relative to the full `seeds` range; throws std::out_of_range when
  // the range extends past num_batch_blocks(seeds).

  void run_batch_blocks(const scenario_spec& spec, seed_range seeds, block_range blocks,
                        unsigned num_threads,
                        const std::function<void(std::uint64_t, const batch_report&)>& sink) const;

  void run_batch_blocks(
      const scenario_spec& spec, const sim_spec& sim, seed_range seeds, block_range blocks,
      unsigned num_threads,
      const std::function<void(std::uint64_t, const dynamic_batch_report&)>& sink) const;

  void run_batch_blocks(
      const scenario_spec& spec, const lifetime_spec& life, seed_range seeds, block_range blocks,
      unsigned num_threads,
      const std::function<void(std::uint64_t, const lifetime_batch_report&)>& sink) const;

 private:
  /// `run` with the instance's deployment and max-power graph handed
  /// back, so callers that need them (run_lifetime) reuse instead of
  /// recomputing. Either out-pointer may be null.
  run_report run_internal(const scenario_spec& spec, std::uint64_t seed,
                          std::vector<geom::vec2>* positions_out,
                          graph::undirected_graph* max_power_out) const;
};

}  // namespace cbtc::api
