// The execution engine of the cbtc::api façade.
//
// `engine::run` executes one scenario instance end to end: deploy
// nodes, run the selected method (centralized oracle, distributed
// protocol on the event simulator, or a position-based baseline),
// apply the optimizations, and measure every requested metric.
//
// `engine::run_batch` fans a seed range across a thread pool (each
// instance is an independent, pure computation) and reduces the
// per-seed reports in seed order, so the aggregate statistics are
// bitwise identical regardless of `num_threads`.
#pragma once

#include <cstdint>
#include <vector>

#include "api/report.h"
#include "api/scenario.h"

namespace cbtc::api {

class engine {
 public:
  /// Runs instance `seed` of the scenario.
  [[nodiscard]] run_report run(const scenario_spec& spec, std::uint64_t seed) const;

  /// Runs the scenario's canonical instance (seed 0).
  [[nodiscard]] run_report run(const scenario_spec& spec) const { return run(spec, 0); }

  /// Runs every seed in `seeds` and returns the reports in seed order.
  /// `num_threads` == 0 picks the hardware concurrency. Results do not
  /// depend on the thread count.
  [[nodiscard]] std::vector<run_report> run_all(const scenario_spec& spec, seed_range seeds,
                                                unsigned num_threads = 0) const;

  /// run_all + deterministic reduction into aggregate statistics.
  [[nodiscard]] batch_report run_batch(const scenario_spec& spec, seed_range seeds,
                                       unsigned num_threads = 0) const;
};

}  // namespace cbtc::api
