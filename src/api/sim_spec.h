// Dynamic-simulation descriptions for the cbtc::api façade.
//
// A `sim_spec` makes churn and mobility a first-class workload axis: it
// describes *what happens after deployment* — how nodes move, when they
// crash or restart, how the Section 4 reconfiguration protocol (NDP
// beaconing + the join/leave/aChange rules) is tuned, how long the
// simulation runs, and how often metrics are sampled. Composed with a
// `scenario_spec` (which still owns deployment, radio, CBTC parameters,
// and the protocol substrate), a sim_spec plus a seed fully determines
// a dynamic run, so dynamic batches are reproducible by construction.
//
// `lifetime_spec` describes the battery-attrition experiment of the
// paper's Discussion (Section 6): every node pays its beacon power each
// round plus relay costs for routed flows until batteries empty and the
// surviving field partitions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace cbtc::api {

/// How nodes move during the dynamic phase.
enum class mobility_kind {
  none,             ///< static deployment (failures only)
  random_waypoint,  ///< walk to random targets at random speeds
  bouncing,         ///< constant velocity, elastic boundary reflection
};

struct mobility_spec {
  mobility_kind kind{mobility_kind::none};
  double min_speed{1.0};  ///< distance units per time unit
  double max_speed{10.0};
  double pause{0.0};      ///< dwell time at each waypoint
  double tick{0.5};       ///< position update period
  /// Absolute sim time motion begins (0 = as soon as the run starts).
  double start{0.0};
  /// Absolute sim time motion ends (0 = move until the horizon).
  double until{0.0};
};

/// One scheduled crash or restart.
struct failure_event {
  graph::node_id node{0};
  double time{0.0};
  bool restart{false};  ///< false = crash, true = restart
};

struct failure_spec {
  /// Crash `random_crashes` distinct random nodes at uniform times in
  /// [window_begin, window_end] (victims drawn from the run seed).
  std::size_t random_crashes{0};
  double window_begin{0.0};
  double window_end{0.0};
  /// Explicit schedule, applied in addition to the random crashes.
  std::vector<failure_event> events;

  [[nodiscard]] bool empty() const { return random_crashes == 0 && events.empty(); }
};

/// Neighbor-discovery (beaconing) parameters — the api-level mirror of
/// proto::ndp_config, so callers never touch proto:: directly.
struct beacon_spec {
  double interval{1.0};  ///< beacon period
  /// Beacons missed before leave_u(v) fires (tau = miss_limit * interval).
  std::uint32_t miss_limit{3};
  /// Minimum bearing change (radians) that triggers aChange_u(v).
  double achange_threshold{0.05};
  /// If true, joins/aChanges trigger the shrink-back pruning pass.
  bool shrink_back{true};

  /// tau: how long a silent neighbor stays in the table.
  [[nodiscard]] double failure_detection_time() const {
    return static_cast<double>(miss_limit) * interval;
  }
};

/// Spatial partitioning of the dynamic event engine (conservative
/// PDES, sim/partition.h). `regions` requests a region count (rounded
/// down to a g x g grid over the deployment field); 0 picks
/// automatically — serial below `min_nodes`, then one region per
/// ~4096 nodes (clamped to [4, 64]). Reports are bitwise-identical at
/// every region count and thread count; runs whose channel or
/// direction estimator draws randomness per delivery (drop/dup/jitter
/// or direction noise, none of the registry presets) fall back to the
/// single-queue reference, as does a channel without a positive base
/// delay (the lookahead).
struct partition_spec {
  std::uint32_t regions{0};     ///< 0 = auto, 1 = force serial reference
  std::size_t min_nodes{4096};  ///< auto mode engages at this node count
};

/// Convergecast data plane over the reconfigured topology
/// (sim/traffic.h): every non-sink node generates one sensor reading
/// per `period` and readings flow hop-by-hop toward the sink along
/// shortest-power-path next-hop tables maintained off the live
/// symmetric closure. `period == 0` disables the plane entirely (the
/// default — old scenarios are unaffected). Times are absolute sim
/// times; 0 means "resolve from the sim_spec" (start defaults to
/// `settle`, until to `horizon`). Periods and service times are
/// clamped up to the channel base delay so the partitioned engine's
/// lookahead always holds.
struct traffic_spec {
  double period{0.0};          ///< reading period per node; 0 = traffic off
  graph::node_id sink{0};      ///< collection point (clamped into [0, n))
  double start{0.0};           ///< 0 = settle
  double until{0.0};           ///< 0 = horizon (generation stop time)
  double service_time{0.05};   ///< one transmission per node per interval
  double route_refresh{1.0};   ///< stale next-hop table rebuild cadence
  std::size_t queue_capacity{8};

  [[nodiscard]] bool enabled() const { return period > 0.0; }
};

/// A complete dynamic simulation: what happens between t = 0 and the
/// horizon. The initial growing phase runs first; metric sampling
/// starts at `settle` (by which the initial topology should be built).
struct sim_spec {
  double horizon{120.0};      ///< total simulated time
  double settle{15.0};        ///< initial topology settle time
  double sample_every{5.0};   ///< metric sample cadence after settle
  beacon_spec beacons{};
  mobility_spec mobility{};
  failure_spec failures{};
  /// Maintain the agents' symmetric-closure topology incrementally
  /// from per-agent neighbor-table deltas (graph::closure_mirror)
  /// instead of re-reading every agent's table at each connectivity
  /// evaluation. Reports are bitwise identical either way (asserted in
  /// tests); false exists to keep the reference path exercisable.
  bool mirror_agent_tables{true};
  /// Spatially partitioned parallel event engine (see partition_spec).
  partition_spec partition{};
  /// Convergecast data plane (off unless traffic.period > 0).
  traffic_spec traffic{};
};

/// Topology-adaptation strategy for lifetime runs — how routes react
/// to battery depletion (Chu & Sethu, arXiv:1309.3284 / 1309.3260).
enum class lifetime_policy {
  /// Minimum-power routes over the CBTC topology, energy-oblivious
  /// (the paper's baseline; bitwise-identical to the historical path).
  plain_cbtc,
  /// Routes weighted by the transmitter's inverse residual-energy
  /// fraction, still over the CBTC topology: depleted relays are
  /// bypassed when an alternative exists.
  energy_balanced,
  /// Neighbors cooperatively spend more transmit power to route around
  /// depleted relays: quadratic residual-energy weighting over the
  /// full live G_R, so longer (higher-power) links substitute for
  /// dying bottleneck nodes.
  cooperative_adaptation,
};

/// Battery-attrition lifetime experiment (round-based, no event sim):
/// each round every live node pays its beacon power, `flows` random
/// source->sink messages drain p(d) per transmitting relay, and nodes
/// die when their battery empties.
struct lifetime_spec {
  /// Battery capacity in units of the maximum transmit power (a budget
  /// of `battery_rounds` max-power broadcasts).
  double battery_rounds{40.0};
  std::size_t flows{30};        ///< routed flows per round
  std::size_t max_rounds{20000};
  /// Route-adaptation strategy (see lifetime_policy).
  lifetime_policy policy{lifetime_policy::plain_cbtc};
  /// Replace the random flows with a convergecast round: every live
  /// node sends one reading to `sink` along the policy's routing tree.
  /// The sink is mains-powered (pays neither beacons nor relaying).
  bool convergecast{false};
  graph::node_id sink{0};
};

/// Canonical policy name ("plain_cbtc", "energy_balanced",
/// "cooperative_adaptation") — the scenario-JSON spelling.
[[nodiscard]] std::string lifetime_policy_name(lifetime_policy p);

/// Parses `lifetime_policy_name` output plus short aliases ("plain",
/// "balanced", "cooperative"); throws std::invalid_argument.
[[nodiscard]] lifetime_policy parse_lifetime_policy(const std::string& name);

}  // namespace cbtc::api
