#include "api/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cbtc::api::json {

jv jv::of(bool v) {
  jv j;
  j.k = kind::boolean;
  j.b = v;
  return j;
}

jv jv::of(double v) {
  if (!std::isfinite(v)) {
    throw std::invalid_argument("JSON: cannot serialize non-finite number");
  }
  jv j;
  j.k = kind::number;
  j.num = v;
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  j.raw.assign(buf, end);
  return j;
}

jv jv::of_u64(std::uint64_t v) {
  jv j;
  j.k = kind::number;
  j.num = static_cast<double>(v);
  j.raw = std::to_string(v);
  return j;
}

jv jv::of(std::string v) {
  jv j;
  j.k = kind::string;
  j.str = std::move(v);
  return j;
}

jv jv::array() {
  jv j;
  j.k = kind::array;
  return j;
}

jv jv::object() {
  jv j;
  j.k = kind::object;
  return j;
}

// ---- writer --------------------------------------------------------

namespace {

void write_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void write_value(std::ostream& os, const jv& v, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string inner(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (v.k) {
    case jv::kind::null:
      os << "null";
      return;
    case jv::kind::boolean:
      os << (v.b ? "true" : "false");
      return;
    case jv::kind::number:
      os << v.raw;
      return;
    case jv::kind::string:
      write_string(os, v.str);
      return;
    case jv::kind::array: {
      if (v.items.empty()) {
        os << "[]";
        return;
      }
      // Arrays of scalars stay on one line (position pairs, windows).
      bool scalars = true;
      for (const jv& e : v.items) {
        if (e.k == jv::kind::object || e.k == jv::kind::array) scalars = false;
      }
      if (scalars) {
        os << '[';
        for (std::size_t i = 0; i < v.items.size(); ++i) {
          if (i != 0) os << ", ";
          write_value(os, v.items[i], indent);
        }
        os << ']';
        return;
      }
      os << "[\n";
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        os << inner;
        write_value(os, v.items[i], indent + 1);
        if (i + 1 != v.items.size()) os << ',';
        os << '\n';
      }
      os << pad << ']';
      return;
    }
    case jv::kind::object: {
      if (v.fields.empty()) {
        os << "{}";
        return;
      }
      os << "{\n";
      for (std::size_t i = 0; i < v.fields.size(); ++i) {
        os << inner;
        write_string(os, v.fields[i].first);
        os << ": ";
        write_value(os, v.fields[i].second, indent + 1);
        if (i + 1 != v.fields.size()) os << ',';
        os << '\n';
      }
      os << pad << '}';
      return;
    }
  }
}

// ---- parser --------------------------------------------------------

namespace {

struct parser {
  std::string_view s;
  std::size_t pos{0};

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON, offset " + std::to_string(pos) + ": " + what);
  }

  void skip_ws() {
    while (pos < s.size() &&
           (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' || s[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    skip_ws();
    if (pos >= s.size()) fail("unexpected end of input");
    return s[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" + s[pos] + "'");
    ++pos;
  }

  bool consume(char c) {
    if (pos < s.size() && peek() == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (s.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < s.size() && s[pos] != '"') {
      char c = s[pos++];
      if (c == '\\') {
        if (pos >= s.size()) fail("unterminated escape");
        switch (s[pos++]) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: fail("unsupported escape sequence");
        }
      }
      out.push_back(c);
    }
    if (pos >= s.size()) fail("unterminated string");
    ++pos;  // closing quote
    return out;
  }

  jv parse_number() {
    const std::size_t start = pos;
    if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) ++pos;
    while (pos < s.size() && (std::isdigit(static_cast<unsigned char>(s[pos])) != 0 ||
                              s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' || s[pos] == '-' ||
                              s[pos] == '+')) {
      ++pos;
    }
    jv j;
    j.k = jv::kind::number;
    j.raw = std::string(s.substr(start, pos - start));
    const auto [end, ec] = std::from_chars(j.raw.data(), j.raw.data() + j.raw.size(), j.num);
    if (ec != std::errc{} || end != j.raw.data() + j.raw.size()) {
      pos = start;
      fail("malformed number '" + j.raw + "'");
    }
    return j;
  }

  jv parse_value() {
    const char c = peek();
    if (c == '{') {
      jv obj = jv::object();
      ++pos;
      if (consume('}')) return obj;
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        expect(':');
        obj.fields.emplace_back(std::move(key), parse_value());
        if (consume(',')) continue;
        expect('}');
        return obj;
      }
    }
    if (c == '[') {
      jv arr = jv::array();
      ++pos;
      if (consume(']')) return arr;
      for (;;) {
        arr.items.push_back(parse_value());
        if (consume(',')) continue;
        expect(']');
        return arr;
      }
    }
    if (c == '"') return jv::of(parse_string());
    if (c == 't') {
      if (!literal("true")) fail("expected 'true'");
      return jv::of(true);
    }
    if (c == 'f') {
      if (!literal("false")) fail("expected 'false'");
      return jv::of(false);
    }
    if (c == 'n') {
      if (!literal("null")) fail("expected 'null'");
      return jv{};
    }
    return parse_number();
  }
};

}  // namespace

jv parse_document(std::string_view text) {
  parser p{text};
  jv root = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing content after the top-level value");
  return root;
}

// ---- object field access -------------------------------------------

const jv* get(const jv& obj, std::string_view key) {
  for (const auto& [k, v] : obj.fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

void check_keys(const jv& obj, const char* where,
                std::initializer_list<std::string_view> allowed) {
  for (const auto& [k, v] : obj.fields) {
    bool known = false;
    for (const std::string_view a : allowed) {
      if (k == a) known = true;
    }
    if (!known) {
      throw std::invalid_argument(std::string("JSON: unknown key \"") + k + "\" in " + where);
    }
  }
}

void require(bool cond, const std::string& what) {
  if (!cond) throw std::invalid_argument("JSON: " + what);
}

double get_num(const jv& obj, std::string_view key, double fallback) {
  const jv* v = get(obj, key);
  if (v == nullptr) return fallback;
  require(v->k == jv::kind::number, std::string(key) + " must be a number");
  return v->num;
}

std::uint64_t get_u64(const jv& obj, std::string_view key, std::uint64_t fallback) {
  const jv* v = get(obj, key);
  if (v == nullptr) return fallback;
  require(v->k == jv::kind::number, std::string(key) + " must be a number");
  std::uint64_t out = 0;
  const auto [end, ec] = std::from_chars(v->raw.data(), v->raw.data() + v->raw.size(), out);
  if (ec != std::errc{} || end != v->raw.data() + v->raw.size()) {
    // Not a plain integer literal; accept other spellings of an exact
    // non-negative integer (e.g. 1e3) but reject fractions like 2.5
    // instead of silently truncating them.
    require(v->num >= 0.0 && v->num == std::floor(v->num),
            std::string(key) + " must be a non-negative integer");
    out = static_cast<std::uint64_t>(v->num);
  }
  return out;
}

std::size_t get_count(const jv& obj, std::string_view key, std::size_t fallback) {
  return static_cast<std::size_t>(get_u64(obj, key, fallback));
}

bool get_bool(const jv& obj, std::string_view key, bool fallback) {
  const jv* v = get(obj, key);
  if (v == nullptr) return fallback;
  require(v->k == jv::kind::boolean, std::string(key) + " must be true or false");
  return v->b;
}

std::string get_str(const jv& obj, std::string_view key, std::string fallback) {
  const jv* v = get(obj, key);
  if (v == nullptr) return fallback;
  require(v->k == jv::kind::string, std::string(key) + " must be a string");
  return v->str;
}

}  // namespace cbtc::api::json
