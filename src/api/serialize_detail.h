// Spec <-> JSON-document converters shared between the scenario-file
// layer (serialize.cpp) and the service wire format (wire.cpp).
//
// Internal header: the stable entry points are api/serialize.h and
// api/wire.h; these converters are exposed only so the wire messages
// embed scenarios with exactly the scenario-file schema (one parser,
// one writer, one strictness policy).
#pragma once

#include "api/json.h"
#include "api/scenario.h"
#include "api/sim_spec.h"

namespace cbtc::api::detail {

[[nodiscard]] json::jv scenario_to_jv(const scenario_spec& s);
[[nodiscard]] scenario_spec scenario_from_jv(const json::jv& o);

[[nodiscard]] json::jv sim_to_jv(const sim_spec& s);
[[nodiscard]] sim_spec sim_from_jv(const json::jv& o);

[[nodiscard]] json::jv lifetime_to_jv(const lifetime_spec& s);
[[nodiscard]] lifetime_spec lifetime_from_jv(const json::jv& o);

}  // namespace cbtc::api::detail
