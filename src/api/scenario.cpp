#include "api/scenario.h"

#include <stdexcept>

#include "geom/random_points.h"
#include "geom/structured_points.h"

namespace cbtc::api {

deployment_spec deployment_spec::fixed_positions(std::vector<geom::vec2> positions) {
  deployment_spec d;
  d.kind = deployment_kind::fixed;
  d.nodes = positions.size();
  d.fixed = std::move(positions);
  return d;
}

std::vector<geom::vec2> scenario_spec::make_positions(std::uint64_t seed) const {
  const geom::bbox box = geom::bbox::rect(deploy.region_side, deploy.region_side);
  const std::uint64_t s = base_seed + seed;
  switch (deploy.kind) {
    case deployment_kind::uniform:
      return geom::uniform_points(deploy.nodes, box, s);
    case deployment_kind::cluster:
      return geom::clustered_points(deploy.nodes, deploy.clusters, deploy.cluster_sigma, box, s);
    case deployment_kind::grid:
      if (deploy.grid_jitter <= 0.0) return geom::grid_points(deploy.nodes, box);
      return geom::jittered_grid_points(deploy.nodes, deploy.grid_jitter, box, s);
    case deployment_kind::fixed:
      return deploy.fixed;
    case deployment_kind::ring:
      return geom::ring_points(deploy.nodes, box);
    case deployment_kind::tree:
      return geom::tree_points(deploy.nodes, deploy.tree_branching, box);
    case deployment_kind::star:
      return geom::star_points(deploy.nodes, deploy.star_arms, box);
  }
  throw std::logic_error("scenario_spec: unknown deployment kind");
}

radio::power_model scenario_spec::power() const {
  return radio::power_model(radio.path_loss_exponent, radio.max_range);
}

radio::propagation_model propagation_spec::model(std::uint64_t instance_seed) const {
  switch (kind) {
    case radio::propagation_kind::isotropic:
      return radio::propagation_model::isotropic();
    case radio::propagation_kind::lognormal_shadowing:
      // The spec seed and the instance seed both feed the link hash;
      // the odd multiplier decorrelates the two streams.
      return radio::propagation_model::lognormal_shadowing(
          sigma_db, clamp_db, seed ^ (instance_seed * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL));
    case radio::propagation_kind::obstacle_field:
      return radio::propagation_model::obstacle_field(obstacles);
  }
  throw std::logic_error("propagation_spec: unknown propagation kind");
}

radio::link_model scenario_spec::link(std::uint64_t seed) const {
  return radio::link_model(power(), radio.propagation.model(base_seed + seed));
}

geom::bbox scenario_spec::region() const {
  if (deploy.kind != deployment_kind::fixed || deploy.fixed.empty()) {
    return geom::bbox::rect(deploy.region_side, deploy.region_side);
  }
  geom::bbox box{deploy.fixed.front(), deploy.fixed.front()};
  for (const geom::vec2& p : deploy.fixed) {
    box.min.x = std::min(box.min.x, p.x);
    box.min.y = std::min(box.min.y, p.y);
    box.max.x = std::max(box.max.x, p.x);
    box.max.y = std::max(box.max.y, p.y);
  }
  return box;
}

std::string method_name(const method_spec& m) {
  switch (m.k) {
    case method_spec::kind::oracle:
      return "oracle";
    case method_spec::kind::protocol:
      return "protocol";
    case method_spec::kind::stc:
      return "stc";
    case method_spec::kind::baseline:
      break;
  }
  switch (m.baseline) {
    case baseline_kind::euclidean_mst:
      return "mst";
    case baseline_kind::relative_neighborhood:
      return "rng";
    case baseline_kind::gabriel:
      return "gabriel";
    case baseline_kind::yao:
      return "yao";
    case baseline_kind::knn:
      return "knn";
    case baseline_kind::max_power:
      return "max-power";
  }
  return "unknown";
}

method_spec parse_method(const std::string& name) {
  if (name == "oracle") return method_spec::oracle();
  if (name == "protocol") return method_spec::protocol();
  if (name == "stc" || name == "sethu-gerety") return method_spec::stc();
  if (name == "mst" || name == "euclidean-mst") {
    return method_spec::of_baseline(baseline_kind::euclidean_mst);
  }
  if (name == "rng" || name == "relative-neighborhood") {
    return method_spec::of_baseline(baseline_kind::relative_neighborhood);
  }
  if (name == "gabriel") return method_spec::of_baseline(baseline_kind::gabriel);
  if (name == "yao") return method_spec::of_baseline(baseline_kind::yao);
  if (name == "knn") return method_spec::of_baseline(baseline_kind::knn);
  if (name == "max-power" || name == "none") {
    return method_spec::of_baseline(baseline_kind::max_power);
  }
  throw std::invalid_argument("unknown method: " + name);
}

}  // namespace cbtc::api
