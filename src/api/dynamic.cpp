// engine::run_dynamic / run_lifetime — the dynamic-simulation layer.
//
// This file is the only place where the façade stands up the event
// simulator, the shared medium, mobility drivers, the failure
// injector, and the per-node Section 4 reconfiguration agents; benches
// and examples describe dynamic workloads purely as scenario_spec +
// sim_spec values.
//
// The live max-power graph G_R is never rebuilt from scratch during a
// run: a graph::live_neighbor_index mirrors the medium through move /
// liveness hooks (each mobility tick or crash/restart costs
// O(neighborhood) instead of O(n * k)), and an event-driven union-find
// connectivity monitor on top of it yields exact disruption windows —
// connectivity is re-evaluated at every event timestamp that changed
// the index or an agent's neighbor table, not at sample cadence.
#include <algorithm>
#include <cmath>
#include <memory>
#include <random>
#include <utility>

#include "api/engine.h"
#include "geom/angle.h"
#include "graph/live_index.h"
#include "graph/metrics.h"
#include "graph/shortest_path.h"
#include "graph/traversal.h"
#include "proto/reconfig.h"
#include "sim/failure.h"
#include "sim/medium.h"
#include "sim/mobility.h"
#include "sim/partition.h"
#include "sim/simulator.h"
#include "sim/traffic.h"
#include "util/parallel.h"

namespace cbtc::api {
namespace {

/// Liveness-restricted view of the network at one instant.
struct live_state {
  graph::undirected_graph topology;  ///< live agents' symmetric neighbor closure
  graph::undirected_graph gr;        ///< live G_R (snapshot of the incremental index)
  std::vector<bool> up;
  std::size_t live{0};
};

/// `mirror` non-null: the topology comes from the incremental closure
/// mirror (O(live adjacency) filtered copy). Null: reference path —
/// re-read every live agent's neighbor table. Both produce the same
/// edge set (asserted in tests).
live_state capture_live_state(const graph::live_neighbor_index& index,
                              const std::vector<std::unique_ptr<proto::reconfig_agent>>& agents,
                              const graph::closure_mirror* mirror) {
  const std::size_t n = agents.size();
  live_state s{graph::undirected_graph(n), index.graph(), std::vector<bool>(n), index.live_count()};
  for (graph::node_id u = 0; u < n; ++u) s.up[u] = index.is_live(u);
  if (mirror != nullptr) {
    s.topology = mirror->live_graph();
    return s;
  }
  for (graph::node_id u = 0; u < n; ++u) {
    if (!s.up[u]) continue;
    for (const auto& [v, info] : agents[u]->cbtc().neighbors()) {
      if (s.up[v]) s.topology.add_edge(u, v);
    }
  }
  return s;
}

dynamic_sample measure(const live_state& s, bool field_connected,
                       const std::vector<geom::vec2>& positions, double max_range, double t,
                       util::thread_pool& pool, graph::connectivity_scratch& scratch) {
  dynamic_sample out;
  out.t = t;
  out.live_nodes = s.live;
  out.edges = s.topology.num_edges();
  out.avg_degree =
      s.live == 0 ? 0.0 : 2.0 * static_cast<double>(out.edges) / static_cast<double>(s.live);
  // Block-ordered reduction: avg_radius is bitwise identical for any
  // intra-thread count.
  const double radius_sum = pool.reduce<double>(
      s.up.size(), 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double sum = 0.0;
        for (std::size_t u = lo; u < hi; ++u) {
          if (s.up[u]) {
            sum += graph::node_radius(s.topology, positions, static_cast<graph::node_id>(u),
                                      max_range);
          }
        }
        return sum;
      },
      [](double& total, const double& part) { total += part; });
  out.avg_radius = s.live == 0 ? 0.0 : radius_sum / static_cast<double>(s.live);
  out.connectivity_ok = graph::same_connectivity(s.topology, s.gr, pool, scratch);
  out.field_connected = field_connected;
  return out;
}

bool alive_subgraph_connected(const graph::undirected_graph& g, const std::vector<bool>& alive) {
  graph::undirected_graph live(g.num_nodes());
  graph::node_id first_alive = graph::invalid_node;
  std::size_t alive_count = 0;
  for (graph::node_id u = 0; u < g.num_nodes(); ++u) {
    if (alive[u]) {
      ++alive_count;
      if (first_alive == graph::invalid_node) first_alive = u;
    }
  }
  if (alive_count <= 1) return true;
  for (const graph::edge& e : g.edges()) {
    if (alive[e.u] && alive[e.v]) live.add_edge(e.u, e.v);
  }
  const auto comps = graph::connected_components(live);
  for (graph::node_id u = 0; u < g.num_nodes(); ++u) {
    if (alive[u] && !comps.same_component(u, first_alive)) return false;
  }
  return true;
}

/// Region grid side (g x g regions) for a dynamic run; 0 selects the
/// serial single-queue reference. The partitioned engine requires a
/// positive lookahead (the channel's fixed base delay) and a draw-free
/// delivery path — per-delivery channel randomness (drop / dup /
/// jitter) or direction noise would be consumed in engine-dependent
/// order, so such runs stay on the reference path. All registry
/// presets are draw-free.
std::uint32_t region_grid_side(const scenario_spec& spec, const sim_spec& sim_cfg,
                               std::size_t nodes) {
  const radio::channel_params& ch = spec.protocol.channel;
  if (ch.base_delay <= 0.0 || ch.drop_prob > 0.0 || ch.dup_prob > 0.0 || ch.jitter_max > 0.0 ||
      spec.protocol.direction_noise > 0.0) {
    return 0;
  }
  std::uint32_t regions = sim_cfg.partition.regions;
  if (regions == 0) {
    if (nodes < sim_cfg.partition.min_nodes) return 0;
    regions = std::clamp<std::uint32_t>(static_cast<std::uint32_t>(nodes / 4096), 4U, 64U);
  }
  const auto side = static_cast<std::uint32_t>(std::sqrt(static_cast<double>(regions)));
  return side >= 2 ? side : 0;
}

}  // namespace

dynamic_report engine::run_dynamic(const scenario_spec& spec, const sim_spec& sim_cfg,
                                   std::uint64_t seed) const {
  const std::vector<geom::vec2> positions = spec.make_positions(seed);
  const radio::link_model link = spec.link(seed);
  const radio::power_model& pm = link.power();
  const std::uint64_t instance_seed = spec.base_seed + seed;

  dynamic_report r;
  r.seed = seed;
  r.nodes = positions.size();

  // Engine selection: both engines execute the same canonical event
  // order (sim/scheduler.h), so the serial simulator in canonical-tie
  // mode is the bitwise-reference oracle for the partitioned engine at
  // any region/thread count (asserted in sim_partition_test).
  util::thread_pool pool(spec.cbtc.intra_threads);
  const std::uint32_t grid_side = region_grid_side(spec, sim_cfg, positions.size());
  const geom::bbox field = spec.region();
  const auto region_at = [&](const geom::vec2& p) -> std::uint32_t {
    const double fx = field.width() > 0.0 ? (p.x - field.min.x) / field.width() : 0.0;
    const double fy = field.height() > 0.0 ? (p.y - field.min.y) / field.height() : 0.0;
    const auto cx = std::min<std::uint32_t>(
        grid_side - 1, static_cast<std::uint32_t>(std::max(0.0, fx * grid_side)));
    const auto cy = std::min<std::uint32_t>(
        grid_side - 1, static_cast<std::uint32_t>(std::max(0.0, fy * grid_side)));
    return cy * grid_side + cx;
  };
  sim::simulator serial_sim(sim::tie_policy::canonical);
  std::unique_ptr<sim::partitioned_simulator> psim;
  if (grid_side >= 2) {
    psim = std::make_unique<sim::partitioned_simulator>(
        positions.size(),
        sim::partitioned_simulator::config{.regions = grid_side * grid_side,
                                           .lookahead = spec.protocol.channel.base_delay,
                                           .pool = &pool});
    for (graph::node_id u = 0; u < positions.size(); ++u) {
      psim->set_region(u, region_at(positions[u]));
    }
  }
  sim::scheduler& simulator = psim ? static_cast<sim::scheduler&>(*psim) : serial_sim;
  sim::medium medium(simulator, link, radio::channel(spec.protocol.channel, instance_seed),
                     radio::direction_estimator(spec.protocol.direction_noise, instance_seed + 1));

  proto::reconfig_config cfg;
  cfg.agent = spec.protocol.agent;
  cfg.agent.params = spec.cbtc;
  cfg.agent.params.mode = algo::growth_mode::discrete;  // what deployed agents run
  cfg.ndp.beacon_interval = sim_cfg.beacons.interval;
  cfg.ndp.miss_limit = sim_cfg.beacons.miss_limit;
  cfg.ndp.achange_threshold = sim_cfg.beacons.achange_threshold;
  cfg.shrink_back = sim_cfg.beacons.shrink_back;

  std::vector<std::unique_ptr<proto::reconfig_agent>> agents;
  agents.reserve(positions.size());
  for (const geom::vec2& p : positions) {
    const graph::node_id id = medium.add_node(p, {});
    agents.push_back(std::make_unique<proto::reconfig_agent>(medium, id, cfg));
  }

  // The incremental live G_R: mirrored from the medium through hooks,
  // never rebuilt. The union-find monitor answers field connectivity
  // at event granularity. Link-aware: under a non-uniform propagation
  // model the index maintains exactly the links that close at P.
  graph::live_neighbor_index index(positions, link);
  graph::connectivity_monitor field_monitor(index);
  graph::connectivity_scratch scratch;

  // Broadcast routing through the live index: neighbors(u) is exactly
  // the set any transmit power can reach (sorted ascending, like the
  // full scan), so deliveries are bitwise-identical and O(degree).
  medium.set_broadcast_directory(
      [&index](graph::node_id u) { return index.neighbors(u); });
  if (psim) {
    std::vector<std::uint32_t> region_map(positions.size());
    for (graph::node_id u = 0; u < positions.size(); ++u) region_map[u] = psim->region_of(u);
    index.set_region_map(std::move(region_map), psim->regions());
  }

  // The agents' closure topology, mirrored from per-agent table deltas
  // so a connectivity evaluation never re-reads n neighbor tables.
  // Under the partitioned engine, deltas produced inside a parallel
  // region phase are buffered per region and applied at the barrier:
  // the mirror's net state is delta-order-invariant (sorted entry
  // vectors with per-pair arc counts), so the flush order does not
  // matter, and evaluations only read it from the (serial) instant
  // hook.
  struct arc_delta {
    graph::node_id u, v;
    bool added;
  };
  std::unique_ptr<graph::closure_mirror> mirror;
  std::vector<std::vector<arc_delta>> mirror_deltas;
  if (sim_cfg.mirror_agent_tables) {
    mirror = std::make_unique<graph::closure_mirror>(positions.size());
    if (psim) mirror_deltas.resize(psim->regions());
    for (graph::node_id u = 0; u < agents.size(); ++u) {
      agents[u]->set_table_hook([u, m = mirror.get(), &mirror_deltas](graph::node_id v,
                                                                      bool added) {
        // Evaluations are scheduled by the coarser change hook below;
        // the delta stream only keeps the mirror current.
        if (sim::partitioned_simulator::in_event_phase()) {
          mirror_deltas[sim::partitioned_simulator::current_region()].push_back({u, v, added});
        } else if (added) {
          m->add_arc(u, v);
        } else {
          m->remove_arc(u, v);
        }
      });
    }
    if (psim) {
      psim->set_barrier_hook([m = mirror.get(), &mirror_deltas] {
        for (std::vector<arc_delta>& deltas : mirror_deltas) {
          for (const arc_delta& d : deltas) {
            if (d.added) {
              m->add_arc(d.u, d.v);
            } else {
              m->remove_arc(d.u, d.v);
            }
          }
          deltas.clear();
        }
      });
    }
  }

  // -- event-driven connectivity tracking ---------------------------
  // Armed after the settle sample. Every event that changes the index
  // or an agent's neighbor table requests the scheduler's end-of-
  // instant hook; the evaluation runs exactly once per changed
  // instant, after all of that instant's events (and, under the
  // partitioned engine, after the barrier applied the buffered mirror
  // deltas). Disruption windows therefore carry exact event times
  // instead of sample-cadence times.
  bool tracking = false;
  bool was_ok = false;  // disruptions are ok -> broken transitions only;
                        // a topology still converging at `settle` is
                        // reported via initial_connectivity_ok instead
  double broken_since = -1.0;
  double latency_sum = 0.0;
  double field_broken_since = -1.0;

  const auto track = [&](double t, bool ok, bool field) {
    if (!ok && was_ok && broken_since < 0.0) broken_since = t;
    if (ok) {
      if (broken_since >= 0.0) {
        const double latency = t - broken_since;
        ++r.disruptions;
        latency_sum += latency;
        r.repair_latency_max = std::max(r.repair_latency_max, latency);
        broken_since = -1.0;
      }
      was_ok = true;
    }
    if (!field && field_broken_since < 0.0) {
      field_broken_since = t;
      if (!r.partitioned) {
        r.partitioned = true;
        r.time_to_partition = t;
      }
    } else if (field && field_broken_since >= 0.0) {
      ++r.field_disruptions;
      r.field_downtime += t - field_broken_since;
      field_broken_since = -1.0;
    }
  };

  const auto evaluate_now = [&] {
    if (mirror) {
      // In-place: read the mirror's and the index's adjacency directly
      // — no per-evaluation graph snapshots on the dense-churn path.
      // Verdict identical to the snapshot comparison (partitions, not
      // representations, decide); asserted in api_sim_test.
      track(simulator.now(), graph::same_connectivity(*mirror, index, scratch),
            field_monitor.connected());
      return;
    }
    const live_state s = capture_live_state(index, agents, mirror.get());
    track(simulator.now(), graph::same_connectivity(s.topology, s.gr, pool, scratch),
          field_monitor.connected());
  };
  // Convergecast data plane (declared before the hooks that mark its
  // routes stale; constructed after the agents exist, below).
  std::unique_ptr<sim::convergecast> traffic;

  const auto note_change = [&] {
    // The traffic plane's next-hop tables follow the same deltas the
    // connectivity tracker watches; marking is a relaxed atomic store,
    // safe from parallel region phases.
    if (traffic) traffic->mark_routes_stale();
    // `tracking` only flips between run_until calls, so the unguarded
    // read from parallel region phases is race-free.
    if (!tracking) return;
    simulator.request_instant_hook();
  };
  simulator.set_instant_hook(evaluate_now);

  medium.set_move_hook([&](graph::node_id u, const geom::vec2& p) {
    // Mobility steps are class-0 (serial) events, so the index mutates
    // before any handler of the instant runs — and a move that changed
    // no edge (version unchanged) cannot change connectivity, so it
    // requests no evaluation at all. Hop powers do drift with every
    // move, though, so the traffic routes always go stale.
    if (traffic) traffic->mark_routes_stale();
    const std::uint64_t before = index.version();
    index.move(u, p);
    if (index.version() != before) note_change();
    if (psim) {
      const std::uint32_t reg = region_at(p);
      if (reg != psim->region_of(u)) {
        psim->set_region(u, reg);
        index.set_node_region(u, reg);
      }
    }
  });
  medium.set_liveness_hook([&](graph::node_id u, bool up) {
    if (up) {
      index.insert(u, medium.position(u));
    } else {
      index.erase(u);
    }
    if (mirror) mirror->set_live(u, up);
    note_change();  // the live set itself changed
  });
  for (auto& a : agents) a->set_change_hook(note_change);

  // Convergecast data plane: wraps the agents' handlers (foreign
  // payloads pass through), draws no randomness (the engine-selection
  // gate above is unaffected), and reads the closure topology only
  // from class-0 refresh events — the mirror path enumerates live
  // neighbors in place; the reference path snapshots the agents'
  // tables once per recompute. Periods are clamped up to the channel
  // base delay so every self-scheduled timer respects the partitioned
  // engine's lookahead.
  if (sim_cfg.traffic.enabled() && positions.size() > 1) {
    sim::convergecast_config tc;
    tc.sink = sim_cfg.traffic.sink < positions.size() ? sim_cfg.traffic.sink : 0;
    const double lead = std::max(0.0, spec.protocol.channel.base_delay);
    tc.period = std::max(sim_cfg.traffic.period, lead);
    tc.start = std::min(sim_cfg.traffic.start > 0.0 ? sim_cfg.traffic.start
                                                    : std::min(sim_cfg.settle, sim_cfg.horizon),
                        sim_cfg.horizon);
    tc.until =
        sim_cfg.traffic.until > 0.0 ? std::min(sim_cfg.traffic.until, sim_cfg.horizon)
                                    : sim_cfg.horizon;
    tc.horizon = sim_cfg.horizon;
    tc.service_time = std::max(sim_cfg.traffic.service_time, lead);
    tc.route_refresh = std::max(sim_cfg.traffic.route_refresh, lead);
    tc.queue_capacity = std::max<std::size_t>(1, sim_cfg.traffic.queue_capacity);
    sim::convergecast::neighbor_fn neighbors;
    std::function<void()> prepare;
    if (mirror) {
      neighbors = [m = mirror.get()](graph::node_id u,
                                     const std::function<void(graph::node_id)>& fn) {
        m->for_each_live_neighbor(u, fn);
      };
    } else {
      // Reference path: snapshot the agents' closure right before each
      // recompute; down nodes end up isolated, matching the mirror.
      auto snapshot = std::make_shared<graph::undirected_graph>(positions.size());
      neighbors = [snapshot](graph::node_id u,
                             const std::function<void(graph::node_id)>& fn) {
        for (graph::node_id v : snapshot->neighbors(u)) fn(v);
      };
      prepare = [snapshot, &index, &agents] {
        *snapshot = graph::undirected_graph(agents.size());
        for (graph::node_id u = 0; u < agents.size(); ++u) {
          if (!index.is_live(u)) continue;
          for (const auto& [v, info] : agents[u]->cbtc().neighbors()) {
            if (index.is_live(v)) snapshot->add_edge(u, v);
          }
        }
      };
    }
    traffic = std::make_unique<sim::convergecast>(
        medium, tc, std::move(neighbors),
        [&link, &medium](graph::node_id tx, graph::node_id rx) {
          return link.required_power(tx, rx, medium.position(tx), medium.position(rx));
        });
    if (prepare) traffic->set_refresh_prepare(std::move(prepare));
    traffic->start();
  }

  for (auto& a : agents) a->start(sim_cfg.horizon);

  // Failure schedule: random crashes drawn from the instance seed,
  // plus any explicit events.
  sim::failure_injector injector(medium, instance_seed ^ 0x8badf00ddeadbeefULL);
  if (sim_cfg.failures.random_crashes > 0) {
    injector.random_crashes(sim_cfg.failures.random_crashes, sim_cfg.failures.window_begin,
                            sim_cfg.failures.window_end);
  }
  for (const failure_event& e : sim_cfg.failures.events) {
    if (e.restart) {
      injector.restart_at(e.node, e.time);
    } else {
      injector.crash_at(e.node, e.time);
    }
  }

  // Mobility driver, armed at mobility.start via the event queue so
  // the initial topology can settle before nodes move.
  std::unique_ptr<sim::random_waypoint> waypoint;
  std::unique_ptr<sim::bouncing_mobility> bouncing;
  const mobility_spec& mob = sim_cfg.mobility;
  const double move_until = mob.until > 0.0 ? mob.until : sim_cfg.horizon;
  if (mob.kind == mobility_kind::random_waypoint) {
    waypoint = std::make_unique<sim::random_waypoint>(
        medium,
        sim::waypoint_params{.region = spec.region(), .min_speed = mob.min_speed,
                             .max_speed = mob.max_speed, .pause = mob.pause},
        instance_seed ^ 0x5e5e5e5e0b0eULL);
    simulator.schedule_at(mob.start, [&] { waypoint->start(mob.tick, move_until); });
  } else if (mob.kind == mobility_kind::bouncing) {
    std::mt19937_64 rng(instance_seed ^ 0xb0b0b0b0ULL);
    std::uniform_real_distribution<double> speed(mob.min_speed, mob.max_speed);
    std::uniform_real_distribution<double> heading(0.0, 2.0 * geom::pi);
    std::vector<geom::vec2> velocities;
    velocities.reserve(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const double s = speed(rng);
      const double a = heading(rng);
      velocities.push_back({s * std::cos(a), s * std::sin(a)});
    }
    bouncing = std::make_unique<sim::bouncing_mobility>(medium, spec.region(),
                                                        std::move(velocities));
    simulator.schedule_at(mob.start, [&] { bouncing->start(mob.tick, move_until); });
  }

  // Sample at settle, every sample_every after that, and at the
  // horizon; the event-driven tracker covers everything in between.
  live_state state;  // last captured state (reused for the final report)
  const auto observe = [&](double t) {
    state = capture_live_state(index, agents, mirror.get());
    const dynamic_sample s = measure(state, field_monitor.connected(), medium.positions(),
                                     pm.max_range(), t, pool, scratch);
    track(t, s.connectivity_ok, s.field_connected);
    r.samples.push_back(s);
  };

  const double settle = std::min(sim_cfg.settle, sim_cfg.horizon);
  simulator.run_until(settle);
  tracking = true;  // pre-settle convergence is not a disruption
  observe(settle);
  r.initial_connectivity_ok = r.samples.front().connectivity_ok;
  r.initial_edges = r.samples.front().edges;

  if (sim_cfg.horizon > settle) {
    const double step =
        sim_cfg.sample_every > 0.0 ? sim_cfg.sample_every : sim_cfg.horizon - settle;
    for (double t = settle + step; t + 1e-9 < sim_cfg.horizon; t += step) {
      simulator.run_until(t);
      observe(t);
    }
    simulator.run_until(sim_cfg.horizon);
    observe(sim_cfg.horizon);
  }

  if (broken_since >= 0.0) ++r.unrepaired;
  if (field_broken_since >= 0.0) r.field_downtime += sim_cfg.horizon - field_broken_since;
  if (!r.partitioned) r.time_to_partition = sim_cfg.horizon;
  r.repair_latency_mean =
      r.disruptions == 0 ? 0.0 : latency_sum / static_cast<double>(r.disruptions);

  r.final_connectivity_ok = r.samples.back().connectivity_ok;
  r.live_nodes = state.live;
  r.final_topology = std::move(state.topology);
  r.final_positions = medium.positions();
  r.up = std::move(state.up);

  for (const auto& a : agents) {
    r.joins += a->stats().joins;
    r.leaves += a->stats().leaves;
    r.achanges += a->stats().achanges;
    r.regrows += a->stats().regrows;
    r.prunes += a->stats().prunes;
    r.beacons += a->ndp().beacons_sent();
  }
  r.channel = medium.stats();

  if (traffic) {
    traffic->finish();
    const sim::convergecast_stats& ts = traffic->stats();
    traffic_report& tr = r.traffic;
    tr.enabled = true;
    tr.generated = ts.generated;
    tr.delivered = ts.delivered;
    tr.forwards = ts.forwards;
    tr.queue_drops = ts.queue_drops;
    tr.no_route_drops = ts.no_route_drops;
    tr.dead_drops = ts.dead_drops;
    tr.lost_in_air = ts.lost_in_air;
    tr.queued_at_end = ts.queued_at_end;
    tr.route_refreshes = ts.route_refreshes;
    tr.queue_peak = ts.queue_peak;
    tr.delivery_ratio =
        ts.generated == 0 ? 0.0
                          : static_cast<double>(ts.delivered) / static_cast<double>(ts.generated);
    const double window = sim_cfg.horizon - traffic->config().start;
    tr.throughput = window > 0.0 ? static_cast<double>(ts.delivered) / window : 0.0;
    tr.avg_delay =
        ts.delivered == 0 ? 0.0 : ts.delay_sum / static_cast<double>(ts.delivered);
    tr.forwarding_energy = ts.forwarding_energy;
    tr.energy_mean = ts.energy_mean;
    tr.energy_max = ts.energy_max;
    tr.energy_stddev = ts.energy_stddev;
  }
  return r;
}

lifetime_report engine::run_lifetime(const scenario_spec& spec, const lifetime_spec& life,
                                     std::uint64_t seed) const {
  scenario_spec topo_spec = spec;
  topo_spec.metrics = {.stretch = false, .interference = false, .robustness = false};
  // One pass: the engine hands back the deployment and the max-power
  // graph it already built for the topology run.
  std::vector<geom::vec2> positions;
  graph::undirected_graph gr;
  const run_report built = run_internal(topo_spec, seed, &positions, &gr);
  const radio::link_model link = spec.link(seed);
  const radio::power_model& pm = link.power();
  const graph::undirected_graph& topology = built.topology;

  const std::size_t n = positions.size();
  const double battery = life.battery_rounds * pm.max_power();
  std::vector<double> charge(n, battery);
  std::vector<bool> alive(n, true);
  std::mt19937_64 rng((spec.base_seed + seed) ^ 0x9e3779b97f4a7c15ULL);

  // Beacon power: reach the farthest topology neighbor (nodes with no
  // neighbors spend nothing — they have nobody to keep alive).
  // Per-slot writes: identical for any intra-thread count.
  util::thread_pool pool(spec.cbtc.intra_threads);
  std::vector<double> beacon(n, 0.0);
  if (link.is_isotropic()) {
    pool.parallel_for(n, [&](std::size_t u) {
      beacon[u] =
          std::pow(graph::node_radius(topology, positions, static_cast<graph::node_id>(u), 0.0),
                   pm.exponent());
    });
  } else {
    // Per-link budget: the beacon must close the worst incident link.
    pool.parallel_for(n, [&](std::size_t u) {
      const auto uid = static_cast<graph::node_id>(u);
      double need = 0.0;
      for (const graph::node_id v : topology.neighbors(uid)) {
        need = std::max(need, link.required_power(uid, v, positions[u], positions[v]));
      }
      beacon[u] = need;
    });
  }
  const graph::edge_cost_fn cost =
      link.is_isotropic() ? graph::power_cost(positions, pm.exponent())
                          : graph::edge_cost_fn([link, &positions](graph::node_id a,
                                                                   graph::node_id b) {
                              return link.required_power(a, b, positions[a], positions[b]);
                            });

  lifetime_report res;
  std::size_t deaths = 0;
  graph::undirected_graph live = topology;

  // The historical plain-CBTC flows experiment keeps its exact
  // arithmetic (hop-count routes via BFS); the policy paths below are
  // additive, so old results stay bitwise-reproducible.
  const bool adaptive = life.policy != lifetime_policy::plain_cbtc || life.convergecast;

  // Adaptive machinery (Chu & Sethu): routes are chosen by residual-
  // energy-weighted shortest paths — energy_balanced divides each
  // hop's power cost by the transmitter's residual-charge fraction
  // over the CBTC topology; cooperative_adaptation squares the
  // penalty and routes over the full live G_R, so neighbors spend
  // more transmit power on longer links to bypass depleted relays.
  // Transmitters always *pay* the real link power; the weighting only
  // biases path choice.
  const graph::node_id sink = life.sink < n ? life.sink : 0;
  graph::undirected_graph live_gr =
      life.policy == lifetime_policy::cooperative_adaptation ? gr : graph::undirected_graph(0);
  const auto residual = [&](graph::node_id u) { return std::max(charge[u] / battery, 1e-3); };
  const auto route_weight = [&](graph::node_id tx, graph::node_id rx) {
    const double base = cost(tx, rx);
    switch (life.policy) {
      case lifetime_policy::plain_cbtc:
        return base;
      case lifetime_policy::energy_balanced:
        return base / residual(tx);
      case lifetime_policy::cooperative_adaptation: {
        const double f = residual(tx);
        return base / (f * f);
      }
    }
    return base;
  };
  const graph::undirected_graph& routing =
      life.policy == lifetime_policy::cooperative_adaptation ? live_gr : live;
  // dijkstra_tree invokes cost(settled, neighbor); the neighbor is the
  // one transmitting toward the tree root, so it pays the weight.
  const graph::edge_cost_fn toward_root = [&](graph::node_id u, graph::node_id v) {
    return route_weight(v, u);
  };

  for (std::size_t round = 1; round <= life.max_rounds; ++round) {
    for (graph::node_id u = 0; u < n; ++u) {
      // A convergecast sink is mains-powered: it pays nothing and
      // (having only mains drain) never dies.
      if (alive[u] && !(life.convergecast && u == sink)) charge[u] -= beacon[u];
    }
    if (!adaptive) {
      for (std::size_t f = 0; f < life.flows; ++f) {
        const auto s = static_cast<graph::node_id>(rng() % n);
        const auto t = static_cast<graph::node_id>(rng() % n);
        if (s == t || !alive[s] || !alive[t]) continue;
        const auto path = graph::bfs_path(live, s, t);
        for (std::size_t h = 0; h + 1 < path.size(); ++h) {
          charge[path[h]] -= cost(path[h], path[h + 1]);
        }
      }
    } else if (life.convergecast) {
      // One reading from every live node to the sink along this
      // round's policy tree; every relay pays the real power of its
      // outgoing hop once per packet it forwards.
      const auto tree = graph::dijkstra_tree(routing, sink, toward_root);
      for (graph::node_id u = 0; u < n; ++u) {
        if (!alive[u] || u == sink || tree.parent[u] == graph::invalid_node) continue;
        for (graph::node_id h = u; h != sink; h = tree.parent[h]) {
          charge[h] -= cost(h, tree.parent[h]);
        }
      }
    } else {
      // Same endpoint draws as the plain experiment, but routed by the
      // policy's weighted shortest paths.
      for (std::size_t f = 0; f < life.flows; ++f) {
        const auto s = static_cast<graph::node_id>(rng() % n);
        const auto t = static_cast<graph::node_id>(rng() % n);
        if (s == t || !alive[s] || !alive[t]) continue;
        const auto tree = graph::dijkstra_tree(routing, t, toward_root);
        if (tree.parent[s] == graph::invalid_node) continue;
        for (graph::node_id h = s; h != t; h = tree.parent[h]) {
          charge[h] -= cost(h, tree.parent[h]);
        }
      }
    }
    bool someone_died = false;
    for (graph::node_id u = 0; u < n; ++u) {
      if (alive[u] && charge[u] <= 0.0) {
        alive[u] = false;
        someone_died = true;
        ++deaths;
        if (res.first_death == 0.0) res.first_death = static_cast<double>(round);
        const std::vector<graph::node_id> nbrs(live.neighbors(u).begin(),
                                               live.neighbors(u).end());
        for (graph::node_id v : nbrs) live.remove_edge(u, v);
        if (live_gr.num_nodes() > 0) {
          const std::vector<graph::node_id> gnbrs(live_gr.neighbors(u).begin(),
                                                  live_gr.neighbors(u).end());
          for (graph::node_id v : gnbrs) live_gr.remove_edge(u, v);
        }
      }
    }
    if (res.quarter_dead == 0.0 && deaths * 4 >= n) {
      res.quarter_dead = static_cast<double>(round);
    }
    if (someone_died && !alive_subgraph_connected(gr, alive)) {
      res.field_partition = static_cast<double>(round);
      break;
    }
  }
  const auto cap = static_cast<double>(life.max_rounds);
  if (res.first_death == 0.0) res.first_death = cap;
  if (res.quarter_dead == 0.0) res.quarter_dead = cap;
  if (res.field_partition == 0.0) res.field_partition = cap;
  return res;
}

void dynamic_batch_report::accumulate(const dynamic_report& r) {
  ++runs;
  if (!r.initial_connectivity_ok) ++initial_connectivity_failures;
  if (!r.final_connectivity_ok) ++final_connectivity_failures;
  if (r.partitioned) ++partitioned_runs;
  unrepaired_disruptions += r.unrepaired;
  broadcasts.add(static_cast<double>(r.channel.broadcasts));
  unicasts.add(static_cast<double>(r.channel.unicasts));
  deliveries.add(static_cast<double>(r.channel.deliveries));
  drops.add(static_cast<double>(r.channel.drops));
  tx_energy.add(r.channel.tx_energy);
  joins.add(static_cast<double>(r.joins));
  leaves.add(static_cast<double>(r.leaves));
  achanges.add(static_cast<double>(r.achanges));
  regrows.add(static_cast<double>(r.regrows));
  prunes.add(static_cast<double>(r.prunes));
  beacons.add(static_cast<double>(r.beacons));
  disruptions.add(static_cast<double>(r.disruptions));
  // Runs that never broke carry no repair-latency information; folding
  // their zeros in would bias the latency aggregates toward zero.
  if (r.disruptions > 0) {
    repair_latency.add(r.repair_latency_mean);
    repair_latency_max.add(r.repair_latency_max);
  }
  field_disruptions.add(static_cast<double>(r.field_disruptions));
  field_downtime.add(r.field_downtime);
  time_to_partition.add(r.time_to_partition);
  live_nodes.add(static_cast<double>(r.live_nodes));
  if (!r.samples.empty()) {
    const dynamic_sample& last = r.samples.back();
    final_edges.add(static_cast<double>(last.edges));
    final_degree.add(last.avg_degree);
    final_radius.add(last.avg_radius);
  }
  if (r.traffic.enabled) {
    ++traffic_runs;
    traffic_generated.add(static_cast<double>(r.traffic.generated));
    traffic_delivered.add(static_cast<double>(r.traffic.delivered));
    traffic_delivery_ratio.add(r.traffic.delivery_ratio);
    traffic_throughput.add(r.traffic.throughput);
    traffic_delay.add(r.traffic.avg_delay);
    traffic_energy.add(r.traffic.forwarding_energy);
    traffic_energy_spread.add(r.traffic.energy_stddev);
    traffic_drops.add(static_cast<double>(r.traffic.queue_drops + r.traffic.no_route_drops +
                                          r.traffic.dead_drops));
    traffic_queue_peak.add(static_cast<double>(r.traffic.queue_peak));
  }
}

void dynamic_batch_report::merge(const dynamic_batch_report& other) {
  runs += other.runs;
  initial_connectivity_failures += other.initial_connectivity_failures;
  final_connectivity_failures += other.final_connectivity_failures;
  partitioned_runs += other.partitioned_runs;
  unrepaired_disruptions += other.unrepaired_disruptions;
  broadcasts.merge(other.broadcasts);
  unicasts.merge(other.unicasts);
  deliveries.merge(other.deliveries);
  drops.merge(other.drops);
  tx_energy.merge(other.tx_energy);
  joins.merge(other.joins);
  leaves.merge(other.leaves);
  achanges.merge(other.achanges);
  regrows.merge(other.regrows);
  prunes.merge(other.prunes);
  beacons.merge(other.beacons);
  disruptions.merge(other.disruptions);
  repair_latency.merge(other.repair_latency);
  repair_latency_max.merge(other.repair_latency_max);
  field_disruptions.merge(other.field_disruptions);
  field_downtime.merge(other.field_downtime);
  time_to_partition.merge(other.time_to_partition);
  final_edges.merge(other.final_edges);
  final_degree.merge(other.final_degree);
  final_radius.merge(other.final_radius);
  live_nodes.merge(other.live_nodes);
  traffic_runs += other.traffic_runs;
  traffic_generated.merge(other.traffic_generated);
  traffic_delivered.merge(other.traffic_delivered);
  traffic_delivery_ratio.merge(other.traffic_delivery_ratio);
  traffic_throughput.merge(other.traffic_throughput);
  traffic_delay.merge(other.traffic_delay);
  traffic_energy.merge(other.traffic_energy);
  traffic_energy_spread.merge(other.traffic_energy_spread);
  traffic_drops.merge(other.traffic_drops);
  traffic_queue_peak.merge(other.traffic_queue_peak);
}

dynamic_batch_report reduce(std::span<const dynamic_report> reports) {
  dynamic_batch_report b;
  for (const dynamic_report& r : reports) b.accumulate(r);
  return b;
}

}  // namespace cbtc::api
