#include "api/engine.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "algo/augment.h"
#include "algo/stc.h"
#include "baselines/baselines.h"
#include "geom/spatial_order.h"
#include "graph/euclidean.h"
#include "graph/interference.h"
#include "graph/metrics.h"
#include "graph/robustness.h"
#include "util/parallel.h"

namespace cbtc::api {
namespace {

graph::undirected_graph build_baseline(const method_spec& m,
                                       std::span<const geom::vec2> positions, double max_range,
                                       const graph::undirected_graph& max_power_graph) {
  switch (m.baseline) {
    case baseline_kind::euclidean_mst:
      return baselines::euclidean_mst(positions, max_range);
    case baseline_kind::relative_neighborhood:
      return baselines::relative_neighborhood_graph(positions, max_range);
    case baseline_kind::gabriel:
      return baselines::gabriel_graph(positions, max_range);
    case baseline_kind::yao:
      return baselines::yao_graph(positions, max_range, m.yao_cones);
    case baseline_kind::knn:
      return baselines::knn_graph(positions, max_range, m.knn_k);
    case baseline_kind::max_power:
      return max_power_graph;
  }
  throw std::logic_error("engine: unknown baseline kind");
}

/// The graph `g` (over permuted labels) mapped back to original labels:
/// node perm[k] of the result owns node k's neighbors, each mapped
/// through perm and re-sorted. Assembled as flat CSR in parallel slots.
graph::undirected_graph relabel_graph(const graph::undirected_graph& g,
                                      std::span<const std::uint32_t> perm,
                                      util::thread_pool& pool) {
  const std::size_t n = g.num_nodes();
  std::vector<std::size_t> off(n + 1, 0);
  {
    std::vector<std::size_t> deg(n);
    pool.parallel_for(n, [&](std::size_t k) { deg[perm[k]] = g.degree(static_cast<graph::node_id>(k)); });
    for (std::size_t u = 0; u < n; ++u) off[u + 1] = off[u] + deg[u];
  }
  std::vector<graph::node_id> flat(off[n]);
  pool.parallel_for(n, [&](std::size_t k) {
    const std::size_t u = perm[k];
    std::size_t w = off[u];
    for (const graph::node_id v : g.neighbors(static_cast<graph::node_id>(k))) flat[w++] = perm[v];
    std::sort(flat.begin() + static_cast<std::ptrdiff_t>(off[u]),
              flat.begin() + static_cast<std::ptrdiff_t>(off[u + 1]));
  });
  return graph::undirected_graph::from_csr(std::move(off), std::move(flat));
}

/// Oracle pipeline under a spatial relabeling: nodes are permuted into
/// Morton order (spatial neighbors become cache neighbors for the
/// growth loop and the scatter passes), the pipeline runs in permuted
/// label space, and the result — topology and growth records — is
/// mapped back to original labels before anything downstream (metrics,
/// invariants, reports) sees it. Shadowing gains hash node ids, so the
/// permuted run consults the original ids via link_model::relabeled.
algo::topology_result relabeled_build(std::span<const geom::vec2> positions,
                                      const radio::link_model& link,
                                      const algo::cbtc_params& params,
                                      const algo::optimization_set& opts,
                                      util::thread_pool& pool) {
  const std::size_t n = positions.size();
  const double cell = link.max_range();
  const std::vector<std::uint32_t> perm = geom::spatial_order(positions, cell);
  std::vector<geom::vec2> rpos(n);
  for (std::size_t k = 0; k < n; ++k) rpos[k] = positions[perm[k]];

  algo::topology_result t = algo::build_topology(
      rpos, link.relabeled(std::vector<std::uint32_t>(perm)), params, opts);

  t.topology = relabel_graph(t.topology, perm, pool);
  algo::cbtc_result growth;
  growth.params = t.growth.params;
  growth.nodes.resize(n);
  pool.parallel_for(n, [&](std::size_t k) {
    algo::node_result nr = std::move(t.growth.nodes[k]);
    for (algo::neighbor_record& rec : nr.neighbors) rec.id = perm[rec.id];
    // Restore the canonical (distance, id) neighbor order — a strict
    // total order (ids are unique), so this is exactly the order the
    // non-relabeled run produces whenever the neighbor sets match.
    std::sort(nr.neighbors.begin(), nr.neighbors.end(),
              [](const algo::neighbor_record& a, const algo::neighbor_record& b) {
                return a.distance != b.distance ? a.distance < b.distance : a.id < b.id;
              });
    growth.nodes[perm[k]] = std::move(nr);
  });
  t.growth = std::move(growth);
  return t;
}

/// Runs the seed blocks `blocks` of the batch over `seeds`: threads
/// claim whole seed blocks from the process-wide executor, fold each
/// run into the block's partial as soon as it finishes (the report is
/// dropped immediately — peak memory is one in-flight report and one
/// partial per thread), and hand every finished partial to `sink`
/// (serialized by a mutex, in completion order). The same executor
/// serves any intra-instance parallelism inside run_one, so batch and
/// intra threads compose instead of multiplying.
template <class Batch, class RunOne, class Sink>
void stream_blocks(seed_range seeds, block_range blocks, unsigned num_threads,
                   const RunOne& run_one, const Sink& sink) {
  const std::uint64_t n = seeds.count;
  const std::uint64_t total_blocks = engine::num_batch_blocks(seeds);
  if (blocks.first > total_blocks || blocks.count > total_blocks - blocks.first) {
    throw std::out_of_range("engine: block range [" + std::to_string(blocks.first) + ", " +
                            std::to_string(blocks.first + blocks.count) + ") exceeds the batch's " +
                            std::to_string(total_blocks) + " seed blocks");
  }
  if (blocks.count == 0) return;

  const unsigned threads =
      std::clamp<unsigned>(util::resolve_threads(num_threads), 1,
                           static_cast<unsigned>(std::min<std::uint64_t>(blocks.count, 1024)));
  util::thread_pool pool(threads);
  std::mutex sink_mu;
  pool.parallel_for_chunks(
      static_cast<std::size_t>(blocks.count), 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b) {
          const std::uint64_t block = blocks.first + static_cast<std::uint64_t>(b);
          Batch partial;
          const std::uint64_t end = std::min(n, (block + 1) * engine::batch_block_size);
          for (std::uint64_t i = block * engine::batch_block_size; i < end; ++i) {
            partial.accumulate(run_one(seeds.first + i));
          }
          const std::lock_guard<std::mutex> lock(sink_mu);
          sink(block, partial);
        }
      });
}

/// Whole-batch reduction on top of stream_blocks: partials land in a
/// per-block slot and merge in block-index order at the end, so the
/// aggregate is bitwise independent of which thread finished when.
template <class Batch, class RunOne>
Batch stream_batch(seed_range seeds, unsigned num_threads, const RunOne& run_one) {
  Batch total;
  if (seeds.count == 0) return total;
  std::vector<Batch> partials(static_cast<std::size_t>(engine::num_batch_blocks(seeds)));
  stream_blocks<Batch>(seeds, {0, engine::num_batch_blocks(seeds)}, num_threads, run_one,
                       [&](std::uint64_t block, const Batch& p) {
                         partials[static_cast<std::size_t>(block)] = p;
                       });
  for (const Batch& p : partials) total.merge(p);
  return total;
}

}  // namespace

run_report engine::run(const scenario_spec& spec, std::uint64_t seed) const {
  return run_internal(spec, seed, nullptr, nullptr);
}

run_report engine::run_internal(const scenario_spec& spec, std::uint64_t seed,
                                std::vector<geom::vec2>* positions_out,
                                graph::undirected_graph* max_power_out) const {
  std::vector<geom::vec2> positions = spec.make_positions(seed);
  const radio::link_model link = spec.link(seed);
  const radio::power_model& pm = link.power();
  const double R = pm.max_range();

  run_report r;
  r.seed = seed;
  r.nodes = positions.size();

  util::thread_pool pool(spec.cbtc.intra_threads);
  graph::undirected_graph gr = graph::build_max_power_graph(positions, link, pool);
  r.max_power_edges = gr.num_edges();

  const auto adopt = [&r](algo::topology_result t) {
    r.growth = std::move(t.growth);
    r.has_growth = true;
    r.topology = std::move(t.topology);
    r.redundant_edges = t.redundant_edges;
    r.removed_edges = t.removed_edges;
  };
  switch (spec.method.k) {
    case method_spec::kind::oracle:
      if (positions.size() >= spec.cbtc.relabel_min_nodes && positions.size() > 1 &&
          link.max_range() > 0.0) {
        adopt(relabeled_build(positions, link, spec.cbtc, spec.opts, pool));
      } else {
        adopt(algo::build_topology(positions, link, spec.cbtc, spec.opts));
      }
      break;
    case method_spec::kind::protocol: {
      proto::protocol_run_config cfg = spec.protocol;
      cfg.agent.params = spec.cbtc;
      // The distributed agents implement the deployable Increase(p)
      // schedule only; record that in the outcome's params instead of
      // silently carrying a continuous-mode request through.
      cfg.agent.params.mode = algo::growth_mode::discrete;
      cfg.seed = spec.base_seed + seed;
      cfg.send_drop_notices =
          spec.opts.asymmetric_removal && algo::asymmetric_removal_applicable(spec.cbtc.alpha);
      proto::protocol_run_result pr = proto::run_protocol(positions, link, cfg);
      r.has_protocol_stats = true;
      r.protocol_stats = pr.stats;
      r.completion_time = pr.completion_time;
      adopt(algo::apply_optimizations(std::move(pr.outcome), positions, link, spec.opts));
      break;
    }
    case method_spec::kind::stc: {
      // No growth record: STC works directly off the gain-aware
      // candidate graph, like the geometric baselines.
      algo::stc_result sr = algo::build_stc_topology(gr, positions, link, pool);
      r.topology = std::move(sr.topology);
      break;
    }
    case method_spec::kind::baseline:
      r.topology = build_baseline(spec.method, positions, R, gr);
      break;
  }
  if (r.has_growth) r.boundary_nodes = r.growth.boundary_count();

  if (spec.post.bridge_augmentation) {
    r.topology = algo::augment_bridge_resilience(r.topology, positions, R).topology;
  }

  r.edges = r.topology.num_edges();
  r.avg_degree = graph::average_degree(r.topology);

  const bool nominal_max_power = spec.method.k == method_spec::kind::baseline &&
                                 spec.method.baseline == baseline_kind::max_power;
  r.node_powers.resize(r.nodes);
  if (nominal_max_power) {
    // No topology control: every node transmits at maximum power, so
    // the radius is nominally R (the paper's Table 1 convention).
    std::fill(r.node_powers.begin(), r.node_powers.end(), pm.max_power());
    r.avg_radius = r.nodes == 0 ? 0.0 : R;
    r.max_radius = r.nodes == 0 ? 0.0 : R;
  } else {
    // Per-node radius pass: powers land per slot, the sum/max reduce in
    // fixed block order — identical output for any intra_threads. The
    // radius metric stays geometric (the paper's rad_u) under every
    // propagation model; the power is the per-link budget, which for
    // isotropic gains is exactly p(rad_u).
    const bool isotropic = link.is_isotropic();
    struct radius_partial {
      double sum{0.0};
      double max{0.0};
    };
    const radius_partial radii = pool.reduce<radius_partial>(
        r.nodes, {},
        [&](std::size_t lo, std::size_t hi) {
          radius_partial part;
          for (std::size_t u = lo; u < hi; ++u) {
            const double rad = graph::node_radius(r.topology, positions, u, R);
            if (isotropic) {
              r.node_powers[u] = pm.required_power(rad);
            } else {
              const auto uid = static_cast<graph::node_id>(u);
              double need = 0.0;
              for (const graph::node_id v : r.topology.neighbors(uid)) {
                need = std::max(need, link.required_power(uid, v, positions[u], positions[v]));
              }
              // Isolated (boundary) nodes still broadcast at P, the
              // same convention the geometric pass encodes via the
              // isolated radius R.
              r.node_powers[u] = r.topology.degree(uid) == 0 ? pm.max_power() : need;
            }
            part.sum += rad;
            part.max = std::max(part.max, rad);
          }
          return part;
        },
        [](radius_partial& total, const radius_partial& p) {
          total.sum += p.sum;
          total.max = std::max(total.max, p.max);
        });
    r.max_radius = radii.max;
    r.avg_radius = r.nodes == 0 ? 0.0 : radii.sum / static_cast<double>(r.nodes);
  }
  double power_sum = 0.0;
  for (const double p : r.node_powers) power_sum += p;
  r.avg_power = r.nodes == 0 ? 0.0 : power_sum / static_cast<double>(r.nodes);

  r.invariants = algo::check_invariants(r.topology, positions, link, gr, pool);

  if (spec.metrics.stretch) {
    const graph::stretch_stats ps =
        graph::power_stretch(r.topology, gr, positions, pm.exponent(), spec.metrics.stretch_samples);
    r.power_stretch = ps.mean;
    r.power_stretch_max = ps.max;
    const graph::stretch_stats hs =
        graph::hop_stretch(r.topology, gr, spec.metrics.stretch_samples);
    r.hop_stretch = hs.mean;
    r.hop_stretch_max = hs.max;
  }
  if (spec.metrics.interference) {
    const graph::interference_stats s = graph::topology_interference(r.topology, positions);
    r.interference_mean = s.mean;
    r.interference_max = s.max;
  }
  if (spec.metrics.robustness) {
    r.cut_vertices = graph::articulation_points(r.topology).size();
  }
  // Last use of both: hand them off without copying (large instances).
  if (positions_out) *positions_out = std::move(positions);
  if (max_power_out) *max_power_out = std::move(gr);
  return r;
}

std::vector<run_report> engine::run_all(const scenario_spec& spec, seed_range seeds,
                                        unsigned num_threads) const {
  const std::size_t n = static_cast<std::size_t>(seeds.count);
  std::vector<run_report> reports(n);
  if (n == 0) return reports;

  const unsigned threads =
      std::clamp<unsigned>(util::resolve_threads(num_threads), 1, static_cast<unsigned>(n));
  util::thread_pool pool(threads);
  // One instance per chunk: per-slot writes make the result identical
  // for any thread count; the executor lets nested intra-instance
  // loops inside run() share the same workers.
  pool.parallel_for_chunks(n, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) reports[i] = run(spec, seeds.first + i);
  });
  return reports;
}

batch_report engine::run_batch(const scenario_spec& spec, seed_range seeds,
                               unsigned num_threads) const {
  return stream_batch<batch_report>(seeds, num_threads,
                                    [&](std::uint64_t seed) { return run(spec, seed); });
}

dynamic_batch_report engine::run_batch(const scenario_spec& spec, const sim_spec& sim,
                                       seed_range seeds, unsigned num_threads) const {
  return stream_batch<dynamic_batch_report>(
      seeds, num_threads, [&](std::uint64_t seed) { return run_dynamic(spec, sim, seed); });
}

lifetime_batch_report engine::run_batch(const scenario_spec& spec, const lifetime_spec& life,
                                        seed_range seeds, unsigned num_threads) const {
  return stream_batch<lifetime_batch_report>(
      seeds, num_threads, [&](std::uint64_t seed) { return run_lifetime(spec, life, seed); });
}

void engine::run_batch_blocks(
    const scenario_spec& spec, seed_range seeds, block_range blocks, unsigned num_threads,
    const std::function<void(std::uint64_t, const batch_report&)>& sink) const {
  stream_blocks<batch_report>(seeds, blocks, num_threads,
                              [&](std::uint64_t seed) { return run(spec, seed); }, sink);
}

void engine::run_batch_blocks(
    const scenario_spec& spec, const sim_spec& sim, seed_range seeds, block_range blocks,
    unsigned num_threads,
    const std::function<void(std::uint64_t, const dynamic_batch_report&)>& sink) const {
  stream_blocks<dynamic_batch_report>(
      seeds, blocks, num_threads,
      [&](std::uint64_t seed) { return run_dynamic(spec, sim, seed); }, sink);
}

void engine::run_batch_blocks(
    const scenario_spec& spec, const lifetime_spec& life, seed_range seeds, block_range blocks,
    unsigned num_threads,
    const std::function<void(std::uint64_t, const lifetime_batch_report&)>& sink) const {
  stream_blocks<lifetime_batch_report>(
      seeds, blocks, num_threads,
      [&](std::uint64_t seed) { return run_lifetime(spec, life, seed); }, sink);
}

void lifetime_batch_report::accumulate(const lifetime_report& r) {
  ++runs;
  first_death.add(r.first_death);
  quarter_dead.add(r.quarter_dead);
  field_partition.add(r.field_partition);
}

void lifetime_batch_report::merge(const lifetime_batch_report& other) {
  runs += other.runs;
  first_death.merge(other.first_death);
  quarter_dead.merge(other.quarter_dead);
  field_partition.merge(other.field_partition);
}

void batch_report::accumulate(const run_report& r) {
  ++runs;
  if (!r.connectivity_preserved()) ++connectivity_failures;
  edges.add(static_cast<double>(r.edges));
  degree.add(r.avg_degree);
  radius.add(r.avg_radius);
  max_radius.add(r.max_radius);
  tx_power.add(r.avg_power);
  boundary.add(static_cast<double>(r.boundary_nodes));
  power_stretch.add(r.power_stretch);
  power_stretch_max.add(r.power_stretch_max);
  hop_stretch.add(r.hop_stretch);
  hop_stretch_max.add(r.hop_stretch_max);
  interference.add(r.interference_mean);
  cut_vertices.add(static_cast<double>(r.cut_vertices));
  removed_edges.add(static_cast<double>(r.removed_edges));
  if (r.has_protocol_stats) {
    has_protocol_stats = true;
    messages.add(static_cast<double>(r.protocol_stats.broadcasts + r.protocol_stats.unicasts));
    deliveries.add(static_cast<double>(r.protocol_stats.deliveries));
    tx_energy.add(r.protocol_stats.tx_energy);
    completion_time.add(r.completion_time);
  }
}

void batch_report::merge(const batch_report& other) {
  runs += other.runs;
  connectivity_failures += other.connectivity_failures;
  edges.merge(other.edges);
  degree.merge(other.degree);
  radius.merge(other.radius);
  max_radius.merge(other.max_radius);
  tx_power.merge(other.tx_power);
  boundary.merge(other.boundary);
  power_stretch.merge(other.power_stretch);
  power_stretch_max.merge(other.power_stretch_max);
  hop_stretch.merge(other.hop_stretch);
  hop_stretch_max.merge(other.hop_stretch_max);
  interference.merge(other.interference);
  cut_vertices.merge(other.cut_vertices);
  removed_edges.merge(other.removed_edges);
  has_protocol_stats = has_protocol_stats || other.has_protocol_stats;
  messages.merge(other.messages);
  deliveries.merge(other.deliveries);
  tx_energy.merge(other.tx_energy);
  completion_time.merge(other.completion_time);
}

batch_report reduce(std::span<const run_report> reports) {
  batch_report b;
  for (const run_report& r : reports) b.accumulate(r);
  return b;
}

}  // namespace cbtc::api
