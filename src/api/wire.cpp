#include "api/wire.h"

#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "api/serialize_detail.h"
#include "exp/stats.h"

namespace cbtc::api::wire {

using json::check_keys;
using json::get;
using json::get_bool;
using json::get_str;
using json::get_u64;
using json::jv;
using json::require;

namespace {

std::string render(const jv& root) {
  std::ostringstream os;
  json::write_value(os, root, 0);
  return os.str();
}

/// Exact u64 extraction from a jv number (prefers the literal
/// spelling, same policy as json::get_u64).
std::uint64_t u64_of(const jv& v, const char* what) {
  require(v.k == jv::kind::number, std::string(what) + " must be a number");
  std::uint64_t out = 0;
  const auto [end, ec] = std::from_chars(v.raw.data(), v.raw.data() + v.raw.size(), out);
  if (ec != std::errc{} || end != v.raw.data() + v.raw.size()) {
    require(v.num >= 0.0 && v.num == std::floor(v.num),
            std::string(what) + " must be a non-negative integer");
    out = static_cast<std::uint64_t>(v.num);
  }
  return out;
}

// ---- exp::summary <-> [count, sum, sum_sq, min, max] ---------------

jv summary_to_jv(const exp::summary& s) {
  jv a = jv::array();
  a.items.push_back(jv::of_u64(s.count()));
  a.items.push_back(jv::of(s.sum()));
  a.items.push_back(jv::of(s.sum_squares()));
  a.items.push_back(jv::of(s.min()));
  a.items.push_back(jv::of(s.max()));
  return a;
}

exp::summary summary_from_jv(const jv& obj, std::string_view key) {
  const jv* v = get(obj, key);
  require(v != nullptr, std::string(key) + " is missing");
  require(v->k == jv::kind::array && v->items.size() == 5,
          std::string(key) + " must be a [count, sum, sum_sq, min, max] array");
  for (const jv& e : v->items) {
    require(e.k == jv::kind::number, std::string(key) + " entries must be numbers");
  }
  return exp::summary::from_raw(
      static_cast<std::size_t>(u64_of(v->items[0], "summary count")), v->items[1].num,
      v->items[2].num, v->items[3].num, v->items[4].num);
}

// ---- report payloads -----------------------------------------------

jv report_to_jv(const batch_report& r) {
  jv o = jv::object();
  o.add("runs", jv::of_u64(r.runs));
  o.add("connectivity_failures", jv::of_u64(r.connectivity_failures));
  o.add("edges", summary_to_jv(r.edges));
  o.add("degree", summary_to_jv(r.degree));
  o.add("radius", summary_to_jv(r.radius));
  o.add("max_radius", summary_to_jv(r.max_radius));
  o.add("tx_power", summary_to_jv(r.tx_power));
  o.add("boundary", summary_to_jv(r.boundary));
  o.add("power_stretch", summary_to_jv(r.power_stretch));
  o.add("power_stretch_max", summary_to_jv(r.power_stretch_max));
  o.add("hop_stretch", summary_to_jv(r.hop_stretch));
  o.add("hop_stretch_max", summary_to_jv(r.hop_stretch_max));
  o.add("interference", summary_to_jv(r.interference));
  o.add("cut_vertices", summary_to_jv(r.cut_vertices));
  o.add("removed_edges", summary_to_jv(r.removed_edges));
  o.add("has_protocol_stats", jv::of(r.has_protocol_stats));
  o.add("messages", summary_to_jv(r.messages));
  o.add("deliveries", summary_to_jv(r.deliveries));
  o.add("tx_energy", summary_to_jv(r.tx_energy));
  o.add("completion_time", summary_to_jv(r.completion_time));
  return o;
}

batch_report report_from_jv(const jv& o) {
  require(o.k == jv::kind::object, "report must be an object");
  check_keys(o, "static report",
             {"runs", "connectivity_failures", "edges", "degree", "radius", "max_radius",
              "tx_power", "boundary", "power_stretch", "power_stretch_max", "hop_stretch",
              "hop_stretch_max", "interference", "cut_vertices", "removed_edges",
              "has_protocol_stats", "messages", "deliveries", "tx_energy", "completion_time"});
  batch_report r;
  r.runs = static_cast<std::size_t>(get_u64(o, "runs", 0));
  r.connectivity_failures = static_cast<std::size_t>(get_u64(o, "connectivity_failures", 0));
  r.edges = summary_from_jv(o, "edges");
  r.degree = summary_from_jv(o, "degree");
  r.radius = summary_from_jv(o, "radius");
  r.max_radius = summary_from_jv(o, "max_radius");
  r.tx_power = summary_from_jv(o, "tx_power");
  r.boundary = summary_from_jv(o, "boundary");
  r.power_stretch = summary_from_jv(o, "power_stretch");
  r.power_stretch_max = summary_from_jv(o, "power_stretch_max");
  r.hop_stretch = summary_from_jv(o, "hop_stretch");
  r.hop_stretch_max = summary_from_jv(o, "hop_stretch_max");
  r.interference = summary_from_jv(o, "interference");
  r.cut_vertices = summary_from_jv(o, "cut_vertices");
  r.removed_edges = summary_from_jv(o, "removed_edges");
  r.has_protocol_stats = get_bool(o, "has_protocol_stats", false);
  r.messages = summary_from_jv(o, "messages");
  r.deliveries = summary_from_jv(o, "deliveries");
  r.tx_energy = summary_from_jv(o, "tx_energy");
  r.completion_time = summary_from_jv(o, "completion_time");
  return r;
}

jv report_to_jv(const dynamic_batch_report& r) {
  jv o = jv::object();
  o.add("runs", jv::of_u64(r.runs));
  o.add("initial_connectivity_failures", jv::of_u64(r.initial_connectivity_failures));
  o.add("final_connectivity_failures", jv::of_u64(r.final_connectivity_failures));
  o.add("partitioned_runs", jv::of_u64(r.partitioned_runs));
  o.add("unrepaired_disruptions", jv::of_u64(r.unrepaired_disruptions));
  o.add("broadcasts", summary_to_jv(r.broadcasts));
  o.add("unicasts", summary_to_jv(r.unicasts));
  o.add("deliveries", summary_to_jv(r.deliveries));
  o.add("drops", summary_to_jv(r.drops));
  o.add("tx_energy", summary_to_jv(r.tx_energy));
  o.add("joins", summary_to_jv(r.joins));
  o.add("leaves", summary_to_jv(r.leaves));
  o.add("achanges", summary_to_jv(r.achanges));
  o.add("regrows", summary_to_jv(r.regrows));
  o.add("prunes", summary_to_jv(r.prunes));
  o.add("beacons", summary_to_jv(r.beacons));
  o.add("disruptions", summary_to_jv(r.disruptions));
  o.add("repair_latency", summary_to_jv(r.repair_latency));
  o.add("repair_latency_max", summary_to_jv(r.repair_latency_max));
  o.add("field_disruptions", summary_to_jv(r.field_disruptions));
  o.add("field_downtime", summary_to_jv(r.field_downtime));
  o.add("time_to_partition", summary_to_jv(r.time_to_partition));
  o.add("final_edges", summary_to_jv(r.final_edges));
  o.add("final_degree", summary_to_jv(r.final_degree));
  o.add("final_radius", summary_to_jv(r.final_radius));
  o.add("live_nodes", summary_to_jv(r.live_nodes));
  o.add("traffic_runs", jv::of_u64(r.traffic_runs));
  o.add("traffic_generated", summary_to_jv(r.traffic_generated));
  o.add("traffic_delivered", summary_to_jv(r.traffic_delivered));
  o.add("traffic_delivery_ratio", summary_to_jv(r.traffic_delivery_ratio));
  o.add("traffic_throughput", summary_to_jv(r.traffic_throughput));
  o.add("traffic_delay", summary_to_jv(r.traffic_delay));
  o.add("traffic_energy", summary_to_jv(r.traffic_energy));
  o.add("traffic_energy_spread", summary_to_jv(r.traffic_energy_spread));
  o.add("traffic_drops", summary_to_jv(r.traffic_drops));
  o.add("traffic_queue_peak", summary_to_jv(r.traffic_queue_peak));
  return o;
}

dynamic_batch_report dynamic_report_from_jv(const jv& o) {
  require(o.k == jv::kind::object, "report must be an object");
  check_keys(o, "dynamic report",
             {"runs", "initial_connectivity_failures", "final_connectivity_failures",
              "partitioned_runs", "unrepaired_disruptions", "broadcasts", "unicasts", "deliveries",
              "drops", "tx_energy", "joins", "leaves", "achanges", "regrows", "prunes", "beacons",
              "disruptions", "repair_latency", "repair_latency_max", "field_disruptions",
              "field_downtime", "time_to_partition", "final_edges", "final_degree", "final_radius",
              "live_nodes", "traffic_runs", "traffic_generated", "traffic_delivered",
              "traffic_delivery_ratio", "traffic_throughput", "traffic_delay", "traffic_energy",
              "traffic_energy_spread", "traffic_drops", "traffic_queue_peak"});
  dynamic_batch_report r;
  r.runs = static_cast<std::size_t>(get_u64(o, "runs", 0));
  r.initial_connectivity_failures =
      static_cast<std::size_t>(get_u64(o, "initial_connectivity_failures", 0));
  r.final_connectivity_failures =
      static_cast<std::size_t>(get_u64(o, "final_connectivity_failures", 0));
  r.partitioned_runs = static_cast<std::size_t>(get_u64(o, "partitioned_runs", 0));
  r.unrepaired_disruptions = static_cast<std::size_t>(get_u64(o, "unrepaired_disruptions", 0));
  r.broadcasts = summary_from_jv(o, "broadcasts");
  r.unicasts = summary_from_jv(o, "unicasts");
  r.deliveries = summary_from_jv(o, "deliveries");
  r.drops = summary_from_jv(o, "drops");
  r.tx_energy = summary_from_jv(o, "tx_energy");
  r.joins = summary_from_jv(o, "joins");
  r.leaves = summary_from_jv(o, "leaves");
  r.achanges = summary_from_jv(o, "achanges");
  r.regrows = summary_from_jv(o, "regrows");
  r.prunes = summary_from_jv(o, "prunes");
  r.beacons = summary_from_jv(o, "beacons");
  r.disruptions = summary_from_jv(o, "disruptions");
  r.repair_latency = summary_from_jv(o, "repair_latency");
  r.repair_latency_max = summary_from_jv(o, "repair_latency_max");
  r.field_disruptions = summary_from_jv(o, "field_disruptions");
  r.field_downtime = summary_from_jv(o, "field_downtime");
  r.time_to_partition = summary_from_jv(o, "time_to_partition");
  r.final_edges = summary_from_jv(o, "final_edges");
  r.final_degree = summary_from_jv(o, "final_degree");
  r.final_radius = summary_from_jv(o, "final_radius");
  r.live_nodes = summary_from_jv(o, "live_nodes");
  r.traffic_runs = static_cast<std::size_t>(get_u64(o, "traffic_runs", 0));
  r.traffic_generated = summary_from_jv(o, "traffic_generated");
  r.traffic_delivered = summary_from_jv(o, "traffic_delivered");
  r.traffic_delivery_ratio = summary_from_jv(o, "traffic_delivery_ratio");
  r.traffic_throughput = summary_from_jv(o, "traffic_throughput");
  r.traffic_delay = summary_from_jv(o, "traffic_delay");
  r.traffic_energy = summary_from_jv(o, "traffic_energy");
  r.traffic_energy_spread = summary_from_jv(o, "traffic_energy_spread");
  r.traffic_drops = summary_from_jv(o, "traffic_drops");
  r.traffic_queue_peak = summary_from_jv(o, "traffic_queue_peak");
  return r;
}

jv report_to_jv(const lifetime_batch_report& r) {
  jv o = jv::object();
  o.add("runs", jv::of_u64(r.runs));
  o.add("first_death", summary_to_jv(r.first_death));
  o.add("quarter_dead", summary_to_jv(r.quarter_dead));
  o.add("field_partition", summary_to_jv(r.field_partition));
  return o;
}

lifetime_batch_report lifetime_report_from_jv(const jv& o) {
  require(o.k == jv::kind::object, "report must be an object");
  check_keys(o, "lifetime report", {"runs", "first_death", "quarter_dead", "field_partition"});
  lifetime_batch_report r;
  r.runs = get_u64(o, "runs", 0);
  r.first_death = summary_from_jv(o, "first_death");
  r.quarter_dead = summary_from_jv(o, "quarter_dead");
  r.field_partition = summary_from_jv(o, "field_partition");
  return r;
}

template <class Report>
std::string encode_partial(std::uint64_t block, batch_mode mode, const Report& r) {
  jv o = jv::object();
  o.add("type", jv::of("block_partial"));
  o.add("mode", jv::of(std::string(mode_name(mode))));
  o.add("block", jv::of_u64(block));
  o.add("report", report_to_jv(r));
  return render(o);
}

/// Shared head of every block_partial decoder: checks the type and
/// mode tags and returns (block index, report document).
std::pair<std::uint64_t, const jv*> partial_head(const message& m, batch_mode expect) {
  require(m.type == message_type::block_partial, "expected a block_partial message");
  const jv& o = m.body;
  check_keys(o, "block_partial", {"type", "mode", "block", "report"});
  const batch_mode mode = parse_mode(get_str(o, "mode", ""));
  require(mode == expect, std::string("block_partial mode '") + std::string(mode_name(mode)) +
                              "' does not match the requested '" +
                              std::string(mode_name(expect)) + "' batch");
  const jv* rep = get(o, "report");
  require(rep != nullptr, "block_partial.report is missing");
  return {get_u64(o, "block", 0), rep};
}

}  // namespace

std::string_view mode_name(batch_mode m) {
  switch (m) {
    case batch_mode::static_runs: return "static";
    case batch_mode::dynamic_runs: return "dynamic";
    case batch_mode::lifetime_runs: return "lifetime";
  }
  return "static";
}

batch_mode parse_mode(const std::string& name) {
  if (name == "static") return batch_mode::static_runs;
  if (name == "dynamic") return batch_mode::dynamic_runs;
  if (name == "lifetime") return batch_mode::lifetime_runs;
  throw std::invalid_argument("wire: unknown batch mode '" + name + "'");
}

// ---- encoders ------------------------------------------------------

std::string encode_hello() {
  jv o = jv::object();
  o.add("type", jv::of("hello"));
  o.add("protocol", jv::of(std::string(protocol_name)));
  o.add("version", jv::of_u64(protocol_version));
  return render(o);
}

std::string encode_batch_request(const batch_request& req) {
  jv o = jv::object();
  o.add("type", jv::of("batch_request"));
  o.add("mode", jv::of(std::string(mode_name(req.mode))));
  o.add("scenario", detail::scenario_to_jv(req.scenario));
  if (req.mode == batch_mode::dynamic_runs) o.add("sim", detail::sim_to_jv(req.sim));
  if (req.mode == batch_mode::lifetime_runs) {
    o.add("lifetime", detail::lifetime_to_jv(req.lifetime));
  }
  {
    jv seeds = jv::object();
    seeds.add("first", jv::of_u64(req.seeds.first));
    seeds.add("count", jv::of_u64(req.seeds.count));
    o.add("seeds", std::move(seeds));
  }
  {
    jv blocks = jv::object();
    blocks.add("first", jv::of_u64(req.blocks.first));
    blocks.add("count", jv::of_u64(req.blocks.count));
    o.add("blocks", std::move(blocks));
  }
  o.add("threads", jv::of_u64(req.threads));
  return render(o);
}

std::string encode_block_partial(std::uint64_t block, const batch_report& r) {
  return encode_partial(block, batch_mode::static_runs, r);
}

std::string encode_block_partial(std::uint64_t block, const dynamic_batch_report& r) {
  return encode_partial(block, batch_mode::dynamic_runs, r);
}

std::string encode_block_partial(std::uint64_t block, const lifetime_batch_report& r) {
  return encode_partial(block, batch_mode::lifetime_runs, r);
}

std::string encode_done(std::uint64_t blocks_sent) {
  jv o = jv::object();
  o.add("type", jv::of("done"));
  o.add("blocks", jv::of_u64(blocks_sent));
  return render(o);
}

std::string encode_error(const std::string& what) {
  jv o = jv::object();
  o.add("type", jv::of("error"));
  o.add("message", jv::of(what));
  return render(o);
}

std::string encode_shutdown() {
  jv o = jv::object();
  o.add("type", jv::of("shutdown"));
  return render(o);
}

// ---- decoders ------------------------------------------------------

message decode_message(std::string_view frame) {
  message m;
  m.body = json::parse_document(frame);
  require(m.body.k == jv::kind::object, "wire frame must be a JSON object");
  const std::string type = get_str(m.body, "type", "");
  if (type == "hello") {
    m.type = message_type::hello;
  } else if (type == "batch_request") {
    m.type = message_type::batch_request;
  } else if (type == "block_partial") {
    m.type = message_type::block_partial;
  } else if (type == "done") {
    m.type = message_type::done;
  } else if (type == "error") {
    m.type = message_type::error;
  } else if (type == "shutdown") {
    m.type = message_type::shutdown;
  } else {
    throw std::invalid_argument("wire: unknown message type '" + type + "'");
  }
  return m;
}

void check_hello(const message& m) {
  require(m.type == message_type::hello, "expected a hello handshake frame");
  check_keys(m.body, "hello", {"type", "protocol", "version"});
  const std::string proto = get_str(m.body, "protocol", "");
  require(proto == protocol_name, "handshake protocol '" + proto + "' is not '" +
                                      std::string(protocol_name) + "'");
  const std::uint64_t version = get_u64(m.body, "version", 0);
  if (version != protocol_version) {
    throw std::invalid_argument("wire: protocol version mismatch: peer speaks v" +
                                std::to_string(version) + ", this build speaks v" +
                                std::to_string(protocol_version));
  }
}

batch_request decode_batch_request(const message& m) {
  require(m.type == message_type::batch_request, "expected a batch_request message");
  const jv& o = m.body;
  check_keys(o, "batch_request",
             {"type", "mode", "scenario", "sim", "lifetime", "seeds", "blocks", "threads"});
  batch_request req;
  req.mode = parse_mode(get_str(o, "mode", ""));
  const jv* scenario = get(o, "scenario");
  require(scenario != nullptr && scenario->k == jv::kind::object,
          "batch_request.scenario must be an object");
  req.scenario = detail::scenario_from_jv(*scenario);
  const jv* sim = get(o, "sim");
  require((sim != nullptr) == (req.mode == batch_mode::dynamic_runs),
          "batch_request.sim is required for dynamic mode and invalid otherwise");
  if (sim != nullptr) req.sim = detail::sim_from_jv(*sim);
  const jv* lifetime = get(o, "lifetime");
  require((lifetime != nullptr) == (req.mode == batch_mode::lifetime_runs),
          "batch_request.lifetime is required for lifetime mode and invalid otherwise");
  if (lifetime != nullptr) req.lifetime = detail::lifetime_from_jv(*lifetime);

  const auto range_of = [&o](const char* key, std::uint64_t& first, std::uint64_t& count) {
    const jv* r = get(o, key);
    require(r != nullptr && r->k == jv::kind::object,
            std::string("batch_request.") + key + " must be a {first, count} object");
    check_keys(*r, key, {"first", "count"});
    first = get_u64(*r, "first", 0);
    count = get_u64(*r, "count", 0);
  };
  range_of("seeds", req.seeds.first, req.seeds.count);
  range_of("blocks", req.blocks.first, req.blocks.count);
  req.threads = static_cast<unsigned>(get_u64(o, "threads", 0));
  return req;
}

std::uint64_t decode_block_partial(const message& m, batch_report& out) {
  const auto [block, rep] = partial_head(m, batch_mode::static_runs);
  out = report_from_jv(*rep);
  return block;
}

std::uint64_t decode_block_partial(const message& m, dynamic_batch_report& out) {
  const auto [block, rep] = partial_head(m, batch_mode::dynamic_runs);
  out = dynamic_report_from_jv(*rep);
  return block;
}

std::uint64_t decode_block_partial(const message& m, lifetime_batch_report& out) {
  const auto [block, rep] = partial_head(m, batch_mode::lifetime_runs);
  out = lifetime_report_from_jv(*rep);
  return block;
}

std::uint64_t decode_done(const message& m) {
  require(m.type == message_type::done, "expected a done message");
  check_keys(m.body, "done", {"type", "blocks"});
  return get_u64(m.body, "blocks", 0);
}

std::string decode_error(const message& m) {
  require(m.type == message_type::error, "expected an error message");
  check_keys(m.body, "error", {"type", "message"});
  return get_str(m.body, "message", "(no message)");
}

}  // namespace cbtc::api::wire
