// Wire messages for the cbtc_serve scenario service.
//
// Frames are JSON documents (see net/frame.h for the length-prefix
// transport) using the same strict parser/writer as the scenario
// files, and scenarios embed with exactly the scenario-file schema.
// Conversation:
//
//   client                          server
//   ------ hello ----------------->
//   <----- hello ------------------        (version handshake)
//   ------ batch_request --------->
//   <----- block_partial ---------- (one per finished seed block,
//   <----- block_partial ----------  completion order)
//   <----- done -------------------
//
// Any side may send `error` instead and drop the connection;
// `shutdown` asks the daemon to exit after the current connection.
//
// Exactness: numbers keep their shortest-round-trip literal spelling
// through the json::jv layer, and exp::summary crosses the wire as its
// raw internals `[count, sum, sum_sq, min, max]`, so a decoded partial
// is bit-for-bit the partial the shard computed — the foundation of
// the dispatcher's "results never depend on sharding" contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "api/engine.h"
#include "api/json.h"
#include "api/report.h"
#include "api/scenario.h"
#include "api/sim_spec.h"

namespace cbtc::api::wire {

inline constexpr std::uint64_t protocol_version = 1;
inline constexpr std::string_view protocol_name = "cbtc-wire";

/// Which batch entry point a request runs.
enum class batch_mode { static_runs, dynamic_runs, lifetime_runs };

[[nodiscard]] std::string_view mode_name(batch_mode m);
[[nodiscard]] batch_mode parse_mode(const std::string& name);

/// One shard's slice of a batch: the full seed range plus the block
/// sub-range this shard should execute (block indices are relative to
/// the whole batch — see engine::batch_block_size).
struct batch_request {
  batch_mode mode{batch_mode::static_runs};
  scenario_spec scenario;
  sim_spec sim;            ///< dynamic mode only
  lifetime_spec lifetime;  ///< lifetime mode only
  seed_range seeds;
  block_range blocks;
  unsigned threads{0};  ///< engine threads on the shard; 0 = shard default
};

enum class message_type { hello, batch_request, block_partial, done, error, shutdown };

/// A decoded frame: the type tag plus the parsed document, which the
/// typed decoders below consume.
struct message {
  message_type type{message_type::error};
  json::jv body;
};

// ---- encoders ------------------------------------------------------

[[nodiscard]] std::string encode_hello();
[[nodiscard]] std::string encode_batch_request(const batch_request& req);
[[nodiscard]] std::string encode_block_partial(std::uint64_t block, const batch_report& r);
[[nodiscard]] std::string encode_block_partial(std::uint64_t block, const dynamic_batch_report& r);
[[nodiscard]] std::string encode_block_partial(std::uint64_t block,
                                               const lifetime_batch_report& r);
[[nodiscard]] std::string encode_done(std::uint64_t blocks_sent);
[[nodiscard]] std::string encode_error(const std::string& what);
[[nodiscard]] std::string encode_shutdown();

// ---- decoders (throw std::invalid_argument on malformed input) -----

[[nodiscard]] message decode_message(std::string_view frame);

/// Validates a hello against this build's protocol name and version;
/// throws std::invalid_argument describing the mismatch.
void check_hello(const message& m);

[[nodiscard]] batch_request decode_batch_request(const message& m);

/// Each overload checks the partial's mode tag matches the report type
/// it fills; returns the block index.
std::uint64_t decode_block_partial(const message& m, batch_report& out);
std::uint64_t decode_block_partial(const message& m, dynamic_batch_report& out);
std::uint64_t decode_block_partial(const message& m, lifetime_batch_report& out);

[[nodiscard]] std::uint64_t decode_done(const message& m);
[[nodiscard]] std::string decode_error(const message& m);

}  // namespace cbtc::api::wire
