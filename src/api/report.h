// Unified results for the cbtc::api façade.
//
// `run_report` is everything one scenario instance produced: the final
// topology, per-node transmit powers, the growth outcome (for CBTC
// methods), the paper's metrics (degree / radius / power / stretch /
// interference), invariant checks, and protocol costs when the
// distributed method ran.
//
// `batch_report` reduces many run_reports into exp::summary aggregates.
// The reduction is sequential in seed order, so it is bitwise
// deterministic no matter how many threads produced the runs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algo/analysis.h"
#include "algo/oracle.h"
#include "exp/stats.h"
#include "graph/graph.h"
#include "sim/medium.h"

namespace cbtc::api {

/// Outcome and metrics of one scenario instance.
struct run_report {
  std::uint64_t seed{0};
  std::size_t nodes{0};

  /// The final (symmetric) topology.
  graph::undirected_graph topology;
  /// Per-node transmit power p(rad_u) needed to sustain `topology`
  /// (nominal P for the max-power baseline; isolated nodes pay p(R)).
  std::vector<double> node_powers;

  /// Growth outcome (after shrink-back); populated for the oracle and
  /// protocol methods only — check `has_growth`.
  algo::cbtc_result growth;
  bool has_growth{false};

  // -- metrics (always computed) ------------------------------------
  std::size_t edges{0};
  std::size_t max_power_edges{0};  ///< edges of G_R, for sparsity context
  double avg_degree{0.0};
  double avg_radius{0.0};
  double max_radius{0.0};
  double avg_power{0.0};
  std::size_t boundary_nodes{0};    ///< CBTC methods only (0 otherwise)
  std::size_t redundant_edges{0};   ///< classified by pairwise removal
  std::size_t removed_edges{0};     ///< actually removed by pairwise removal
  algo::invariant_report invariants;

  // -- optional metrics (see metric_options) ------------------------
  double power_stretch{1.0};
  double hop_stretch{1.0};
  double interference_mean{0.0};
  std::size_t interference_max{0};
  std::size_t cut_vertices{0};

  // -- protocol costs (method == protocol only) ---------------------
  bool has_protocol_stats{false};
  sim::medium_stats protocol_stats{};
  double completion_time{0.0};

  [[nodiscard]] bool connectivity_preserved() const {
    return invariants.connectivity_preserved;
  }
};

/// Aggregates over a batch of runs (one summary per scalar metric).
struct batch_report {
  std::size_t runs{0};
  std::size_t connectivity_failures{0};

  exp::summary edges;
  exp::summary degree;
  exp::summary radius;
  exp::summary max_radius;
  exp::summary tx_power;
  exp::summary boundary;
  exp::summary power_stretch;
  exp::summary hop_stretch;
  exp::summary interference;
  exp::summary cut_vertices;
  exp::summary removed_edges;

  bool has_protocol_stats{false};
  exp::summary messages;    ///< broadcasts + unicasts per run
  exp::summary deliveries;
  exp::summary tx_energy;
  exp::summary completion_time;

  [[nodiscard]] double preserved_fraction() const {
    return runs == 0 ? 1.0
                     : static_cast<double>(runs - connectivity_failures) /
                           static_cast<double>(runs);
  }
};

/// Reduces per-seed reports (in the order given — callers pass seed
/// order for determinism) into aggregate statistics.
[[nodiscard]] batch_report reduce(std::span<const run_report> reports);

}  // namespace cbtc::api
