// Unified results for the cbtc::api façade.
//
// `run_report` is everything one scenario instance produced: the final
// topology, per-node transmit powers, the growth outcome (for CBTC
// methods), the paper's metrics (degree / radius / power / stretch /
// interference), invariant checks, and protocol costs when the
// distributed method ran.
//
// `batch_report` reduces many run_reports into exp::summary aggregates.
// Reduction is streamed: seeds are accumulated into fixed-size seed
// blocks (in seed order within a block) and the block partials are
// merged in block order, so aggregates are bitwise deterministic no
// matter how many threads produced the runs — without ever holding
// every run_report alive.
//
// `dynamic_report` / `dynamic_batch_report` are the equivalents for
// dynamic (churn / mobility) simulations driven by a sim_spec.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algo/analysis.h"
#include "algo/oracle.h"
#include "exp/stats.h"
#include "geom/vec2.h"
#include "graph/graph.h"
#include "sim/medium.h"

namespace cbtc::api {

/// Outcome and metrics of one scenario instance.
struct run_report {
  std::uint64_t seed{0};
  std::size_t nodes{0};

  /// The final (symmetric) topology.
  graph::undirected_graph topology;
  /// Per-node transmit power p(rad_u) needed to sustain `topology`
  /// (nominal P for the max-power baseline; isolated nodes pay p(R)).
  std::vector<double> node_powers;

  /// Growth outcome (after shrink-back); populated for the oracle and
  /// protocol methods only — check `has_growth`.
  algo::cbtc_result growth;
  bool has_growth{false};

  // -- metrics (always computed) ------------------------------------
  std::size_t edges{0};
  std::size_t max_power_edges{0};  ///< edges of G_R, for sparsity context
  double avg_degree{0.0};
  double avg_radius{0.0};
  double max_radius{0.0};
  double avg_power{0.0};
  std::size_t boundary_nodes{0};    ///< CBTC methods only (0 otherwise)
  std::size_t redundant_edges{0};   ///< classified by pairwise removal
  std::size_t removed_edges{0};     ///< actually removed by pairwise removal
  algo::invariant_report invariants;

  // -- optional metrics (see metric_options) ------------------------
  double power_stretch{1.0};      ///< mean over sampled pairs
  double power_stretch_max{1.0};  ///< worst sampled pair
  double hop_stretch{1.0};
  double hop_stretch_max{1.0};
  double interference_mean{0.0};
  std::size_t interference_max{0};
  std::size_t cut_vertices{0};

  // -- protocol costs (method == protocol only) ---------------------
  bool has_protocol_stats{false};
  sim::medium_stats protocol_stats{};
  double completion_time{0.0};

  [[nodiscard]] bool connectivity_preserved() const {
    return invariants.connectivity_preserved;
  }
};

/// Aggregates over a batch of runs (one summary per scalar metric).
struct batch_report {
  std::size_t runs{0};
  std::size_t connectivity_failures{0};

  exp::summary edges;
  exp::summary degree;
  exp::summary radius;
  exp::summary max_radius;
  exp::summary tx_power;
  exp::summary boundary;
  exp::summary power_stretch;
  exp::summary power_stretch_max;
  exp::summary hop_stretch;
  exp::summary hop_stretch_max;
  exp::summary interference;
  exp::summary cut_vertices;
  exp::summary removed_edges;

  bool has_protocol_stats{false};
  exp::summary messages;    ///< broadcasts + unicasts per run
  exp::summary deliveries;
  exp::summary tx_energy;
  exp::summary completion_time;

  [[nodiscard]] double preserved_fraction() const {
    return runs == 0 ? 1.0
                     : static_cast<double>(runs - connectivity_failures) /
                           static_cast<double>(runs);
  }

  /// Folds one run into the aggregates (streaming reduction step).
  void accumulate(const run_report& r);
  /// Appends another partial's aggregates (callers merge partials in
  /// seed-block order for determinism).
  void merge(const batch_report& other);
};

/// Reduces per-seed reports (in the order given — callers pass seed
/// order for determinism) into aggregate statistics.
[[nodiscard]] batch_report reduce(std::span<const run_report> reports);

// ---- dynamic simulation reports ------------------------------------

/// One metric sample of a dynamic run, taken at sim time `t`.
struct dynamic_sample {
  double t{0.0};
  std::size_t live_nodes{0};
  std::size_t edges{0};            ///< live-topology edges
  double avg_degree{0.0};
  double avg_radius{0.0};
  /// Live topology preserves the connectivity of the survivors' G_R.
  bool connectivity_ok{false};
  /// The survivors' G_R itself is one component (no unfixable split).
  bool field_connected{true};
};

/// Convergecast data-plane outcome of one dynamic run (sim/traffic.h):
/// raw conservation counters plus the derived throughput / delivery /
/// energy-spread metrics. For a channel that never duplicates,
/// generated = delivered + queue_drops + no_route_drops + dead_drops +
/// lost_in_air + queued_at_end (asserted in tests).
struct traffic_report {
  bool enabled{false};
  std::uint64_t generated{0};
  std::uint64_t delivered{0};
  std::uint64_t forwards{0};        ///< transmissions, origin sends included
  std::uint64_t queue_drops{0};
  std::uint64_t no_route_drops{0};
  std::uint64_t dead_drops{0};
  std::uint64_t lost_in_air{0};
  std::uint64_t queued_at_end{0};
  std::uint64_t route_refreshes{0};
  std::uint64_t queue_peak{0};      ///< deepest queue seen at any node
  double delivery_ratio{0.0};       ///< delivered / generated
  double throughput{0.0};           ///< delivered per sim-time unit
  double avg_delay{0.0};            ///< mean source-to-sink latency
  double forwarding_energy{0.0};    ///< traffic-only energy, summed
  double energy_mean{0.0};          ///< per non-sink node
  double energy_max{0.0};
  double energy_stddev{0.0};        ///< the forwarding-balance metric
};

/// Outcome of one dynamic (churn / mobility) simulation instance.
struct dynamic_report {
  std::uint64_t seed{0};
  std::size_t nodes{0};

  // -- initial topology (at sim_spec::settle) -----------------------
  bool initial_connectivity_ok{false};
  std::size_t initial_edges{0};

  // -- final state (at the horizon) ---------------------------------
  bool final_connectivity_ok{false};
  std::size_t live_nodes{0};
  graph::undirected_graph final_topology;  ///< live nodes + live edges
  std::vector<geom::vec2> final_positions;
  std::vector<bool> up;                    ///< liveness per node

  // -- reconfiguration event counters (summed over agents) ----------
  std::uint64_t joins{0};
  std::uint64_t leaves{0};
  std::uint64_t achanges{0};
  std::uint64_t regrows{0};
  std::uint64_t prunes{0};
  std::uint64_t beacons{0};

  // -- channel costs over the whole run -----------------------------
  sim::medium_stats channel{};

  // -- topology-repair latency --------------------------------------
  // Connectivity (live topology vs the survivors' G_R) is re-evaluated
  // at every event that touched the live-neighbor index (mobility
  // tick, crash, restart) or an agent's neighbor table, so disruption
  // windows carry event timestamps, not sample-cadence timestamps.
  std::size_t disruptions{0};        ///< repaired disruptions
  std::size_t unrepaired{0};         ///< still broken at the horizon
  double repair_latency_mean{0.0};   ///< over repaired disruptions
  double repair_latency_max{0.0};

  // -- field (G_R) disruption windows -------------------------------
  // From the event-driven union-find connectivity monitor on the
  // live-neighbor index: exact times the survivors' max-power graph
  // split and healed.
  std::size_t field_disruptions{0};  ///< G_R split episodes that healed
  double field_downtime{0.0};        ///< total time the live field was split

  // -- lifetime to partition ----------------------------------------
  /// First instant the survivors' G_R splits (exact, event-driven;
  /// horizon if it never splits — check `partitioned`).
  double time_to_partition{0.0};
  bool partitioned{false};

  /// Convergecast data-plane outcome (all-zero unless enabled).
  traffic_report traffic{};

  std::vector<dynamic_sample> samples;
};

/// Aggregates over a batch of dynamic runs.
struct dynamic_batch_report {
  std::size_t runs{0};
  std::size_t initial_connectivity_failures{0};
  std::size_t final_connectivity_failures{0};
  std::size_t partitioned_runs{0};
  std::size_t unrepaired_disruptions{0};

  exp::summary broadcasts;
  exp::summary unicasts;
  exp::summary deliveries;
  exp::summary drops;
  exp::summary tx_energy;
  exp::summary joins;
  exp::summary leaves;
  exp::summary achanges;
  exp::summary regrows;
  exp::summary prunes;
  exp::summary beacons;
  exp::summary disruptions;
  exp::summary repair_latency;      ///< per-run means
  exp::summary repair_latency_max;  ///< per-run maxima
  exp::summary field_disruptions;
  exp::summary field_downtime;
  exp::summary time_to_partition;
  exp::summary final_edges;
  exp::summary final_degree;
  exp::summary final_radius;
  exp::summary live_nodes;

  /// Convergecast data-plane aggregates; populated only over runs with
  /// traffic enabled (`traffic_runs` counts them).
  std::size_t traffic_runs{0};
  exp::summary traffic_generated;
  exp::summary traffic_delivered;
  exp::summary traffic_delivery_ratio;
  exp::summary traffic_throughput;
  exp::summary traffic_delay;
  exp::summary traffic_energy;
  exp::summary traffic_energy_spread;  ///< per-run energy stddev
  exp::summary traffic_drops;          ///< queue + no-route + dead drops
  exp::summary traffic_queue_peak;

  [[nodiscard]] double final_preserved_fraction() const {
    return runs == 0 ? 1.0
                     : static_cast<double>(runs - final_connectivity_failures) /
                           static_cast<double>(runs);
  }

  void accumulate(const dynamic_report& r);
  void merge(const dynamic_batch_report& other);
};

/// Reduces dynamic reports (in the order given) into aggregates.
[[nodiscard]] dynamic_batch_report reduce(std::span<const dynamic_report> reports);

}  // namespace cbtc::api
