// Position-based topology-control baselines.
//
// The paper's Table 1 compares CBTC against no-topology-control (every
// node at maximum power). Its related-work section points at the
// geometric proximity graphs these functions implement — all of which
// *require position information*, which is exactly what CBTC avoids:
//
//   - Euclidean MST: the sparsest connected topology (global optimum
//     for maximum edge length), but inherently centralized.
//   - Relative Neighborhood Graph (Toussaint 80): keep (u,v) unless
//     some witness w is closer to both endpoints.
//   - Gabriel graph: keep (u,v) unless a witness lies in the circle
//     with diameter uv.
//   - Yao / theta-graph (Hassin-Peleg style cone graphs): keep the
//     nearest neighbor in each of k cones — the position-based cousin
//     of CBTC's cone coverage.
//   - k-nearest-neighbor graph: the classic strawman; does not
//     guarantee connectivity.
//
// All constructions are restricted to edges of G_R (length <= R), so
// every output is a legal radio topology.
#pragma once

#include <cstddef>
#include <span>

#include "geom/vec2.h"
#include "graph/graph.h"

namespace cbtc::baselines {

/// Euclidean minimum spanning forest of G_R (Kruskal). One tree per
/// G_R component, so connectivity is preserved exactly.
[[nodiscard]] graph::undirected_graph euclidean_mst(std::span<const geom::vec2> positions,
                                                    double max_range);

/// Relative neighborhood graph intersected with G_R.
[[nodiscard]] graph::undirected_graph relative_neighborhood_graph(
    std::span<const geom::vec2> positions, double max_range);

/// Gabriel graph intersected with G_R.
[[nodiscard]] graph::undirected_graph gabriel_graph(std::span<const geom::vec2> positions,
                                                    double max_range);

/// Yao graph with `cones` sectors (symmetric closure), intersected
/// with G_R: each node keeps its nearest neighbor in every cone of
/// angle 2*pi/cones.
[[nodiscard]] graph::undirected_graph yao_graph(std::span<const geom::vec2> positions,
                                                double max_range, std::size_t cones);

/// k-nearest-neighbor graph (symmetric closure), intersected with G_R.
[[nodiscard]] graph::undirected_graph knn_graph(std::span<const geom::vec2> positions,
                                                double max_range, std::size_t k);

}  // namespace cbtc::baselines
