#include "baselines/baselines.h"

#include <algorithm>
#include <vector>

#include "geom/angle.h"
#include "geom/spatial_grid.h"
#include "graph/euclidean.h"
#include "graph/union_find.h"

namespace cbtc::baselines {

using graph::node_id;

graph::undirected_graph euclidean_mst(std::span<const geom::vec2> positions, double max_range) {
  struct weighted {
    double len_sq;
    node_id u, v;
  };
  std::vector<weighted> edges;
  const graph::undirected_graph gr = graph::build_max_power_graph(positions, max_range);
  for (const graph::edge& e : gr.edges()) {
    edges.push_back({geom::distance_sq(positions[e.u], positions[e.v]), e.u, e.v});
  }
  std::sort(edges.begin(), edges.end(), [](const weighted& a, const weighted& b) {
    return a.len_sq < b.len_sq || (a.len_sq == b.len_sq && std::pair{a.u, a.v} < std::pair{b.u, b.v});
  });

  graph::undirected_graph mst(positions.size());
  graph::union_find uf(positions.size());
  for (const weighted& e : edges) {
    if (uf.unite(e.u, e.v)) mst.add_edge(e.u, e.v);
  }
  return mst;
}

graph::undirected_graph relative_neighborhood_graph(std::span<const geom::vec2> positions,
                                                    double max_range) {
  const graph::undirected_graph gr = graph::build_max_power_graph(positions, max_range);
  graph::undirected_graph rng(positions.size());
  for (const graph::edge& e : gr.edges()) {
    const double d_uv = geom::distance_sq(positions[e.u], positions[e.v]);
    bool blocked = false;
    // A witness must be closer to both endpoints than they are to each
    // other; any such witness is within range of u, so scanning u's
    // G_R neighborhood suffices.
    for (node_id w : gr.neighbors(e.u)) {
      if (w == e.v) continue;
      if (geom::distance_sq(positions[e.u], positions[w]) < d_uv &&
          geom::distance_sq(positions[e.v], positions[w]) < d_uv) {
        blocked = true;
        break;
      }
    }
    if (!blocked) rng.add_edge(e.u, e.v);
  }
  return rng;
}

graph::undirected_graph gabriel_graph(std::span<const geom::vec2> positions, double max_range) {
  const graph::undirected_graph gr = graph::build_max_power_graph(positions, max_range);
  graph::undirected_graph gg(positions.size());
  for (const graph::edge& e : gr.edges()) {
    const geom::vec2 mid = (positions[e.u] + positions[e.v]) / 2.0;
    const double r_sq = geom::distance_sq(positions[e.u], positions[e.v]) / 4.0;
    bool blocked = false;
    // A witness inside the diameter circle is within d(u,v) <= R of u.
    for (node_id w : gr.neighbors(e.u)) {
      if (w == e.v) continue;
      if (geom::distance_sq(positions[w], mid) < r_sq) {
        blocked = true;
        break;
      }
    }
    if (!blocked) gg.add_edge(e.u, e.v);
  }
  return gg;
}

graph::undirected_graph yao_graph(std::span<const geom::vec2> positions, double max_range,
                                  std::size_t cones) {
  graph::undirected_graph yao(positions.size());
  if (cones == 0 || positions.empty()) return yao;
  const geom::spatial_grid grid(positions, max_range);
  const double sector = geom::two_pi / static_cast<double>(cones);

  std::vector<geom::point_index> hits;
  std::vector<node_id> best(cones);
  std::vector<double> best_d(cones);
  for (node_id u = 0; u < positions.size(); ++u) {
    std::fill(best.begin(), best.end(), graph::invalid_node);
    std::fill(best_d.begin(), best_d.end(), 0.0);
    hits.clear();
    grid.query_radius_into(positions[u], max_range, u, hits);
    for (geom::point_index v : hits) {
      const geom::vec2 d = positions[v] - positions[u];
      const auto c = std::min(static_cast<std::size_t>(d.bearing() / sector), cones - 1);
      const double dist = d.norm_sq();
      if (best[c] == graph::invalid_node || dist < best_d[c] ||
          (dist == best_d[c] && v < best[c])) {
        best[c] = v;
        best_d[c] = dist;
      }
    }
    for (node_id v : best) {
      if (v != graph::invalid_node) yao.add_edge(u, v);
    }
  }
  return yao;
}

graph::undirected_graph knn_graph(std::span<const geom::vec2> positions, double max_range,
                                  std::size_t k) {
  graph::undirected_graph knn(positions.size());
  if (positions.empty() || k == 0) return knn;
  const geom::spatial_grid grid(positions, max_range);
  std::vector<geom::point_index> hits;
  for (node_id u = 0; u < positions.size(); ++u) {
    hits.clear();
    grid.query_radius_into(positions[u], max_range, u, hits);
    std::sort(hits.begin(), hits.end(), [&](geom::point_index a, geom::point_index b) {
      const double da = geom::distance_sq(positions[u], positions[a]);
      const double db = geom::distance_sq(positions[u], positions[b]);
      return da < db || (da == db && a < b);
    });
    const std::size_t take = std::min(k, hits.size());
    for (std::size_t i = 0; i < take; ++i) knn.add_edge(u, hits[i]);
  }
  return knn;
}

}  // namespace cbtc::baselines
