#include "util/executor.h"

#include <algorithm>

namespace cbtc::util {

executor& executor::instance() {
  static executor e;
  return e;
}

executor::~executor() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

unsigned executor::workers() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<unsigned>(workers_.size());
}

executor::task* executor::claimable(const task* skip) {
  for (task* t = head_; t != nullptr; t = t->next_task_) {
    if (t == skip) continue;
    if (t->next_.load(std::memory_order_relaxed) < t->num_chunks_ &&
        t->helpers_ + 1 < t->width_) {
      return t;
    }
  }
  return nullptr;
}

void executor::ensure_workers(unsigned width) {
  const auto wanted = static_cast<std::size_t>(std::min(width - 1, max_workers));
  while (workers_.size() < wanted) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void executor::run_chunk(task& t, std::size_t c) {
  const std::size_t lo = c * t.chunk_;
  const std::size_t hi = std::min(t.n_, lo + t.chunk_);
  std::size_t completing = 1;
  try {
    (*t.body_)(lo, hi);
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(t.error_mutex_);
      if (!t.error_) t.error_ = std::current_exception();
    }
    // Abandon the unclaimed remainder. Chunks claimed before the
    // exchange complete (and decrement) themselves; the never-claimed
    // tail [old, num_chunks) is completed here in one step.
    const std::size_t old = t.next_.exchange(t.num_chunks_, std::memory_order_relaxed);
    completing += t.num_chunks_ - std::min(old, t.num_chunks_);
  }
  if (t.unfinished_.fetch_sub(completing, std::memory_order_acq_rel) == completing) {
    // Last chunk of this task: wake its owner.
    const std::lock_guard<std::mutex> lock(mutex_);
    cv_.notify_all();
  }
}

void executor::drain(task& t) {
  for (;;) {
    const std::size_t c = t.next_.fetch_add(1, std::memory_order_relaxed);
    if (c >= t.num_chunks_) return;
    run_chunk(t, c);
  }
}

void executor::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    task* t = claimable(nullptr);
    if (t == nullptr) {
      if (stop_) return;
      cv_.wait(lock);
      continue;
    }
    ++t->helpers_;
    lock.unlock();
    drain(*t);
    lock.lock();
    --t->helpers_;
    // The owner may be waiting for the helper count to reach zero.
    if (t->unfinished_.load(std::memory_order_acquire) == 0) cv_.notify_all();
  }
}

void executor::run(task& t) {
  if (t.num_chunks_ == 0) return;
  const bool fanned = t.width_ > 1 && t.num_chunks_ > 1;
  if (fanned) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ensure_workers(t.width_);
    t.next_task_ = head_;
    t.prev_task_ = nullptr;
    if (head_ != nullptr) head_->prev_task_ = &t;
    head_ = &t;
    cv_.notify_all();
  }
  drain(t);  // the owner always participates
  if (fanned) {
    std::unique_lock<std::mutex> lock(mutex_);
    // Wait for stragglers — but steal chunks from other pending tasks
    // instead of idling while any exist (work-stealing nesting).
    while (t.unfinished_.load(std::memory_order_acquire) != 0 || t.helpers_ != 0) {
      if (task* other = claimable(&t)) {
        ++other->helpers_;
        lock.unlock();
        drain(*other);
        lock.lock();
        --other->helpers_;
        if (other->unfinished_.load(std::memory_order_acquire) == 0) cv_.notify_all();
        continue;
      }
      cv_.wait(lock);
    }
    if (t.prev_task_ != nullptr) {
      t.prev_task_->next_task_ = t.next_task_;
    } else {
      head_ = t.next_task_;
    }
    if (t.next_task_ != nullptr) t.next_task_->prev_task_ = t.prev_task_;
  }
  if (t.error_) {
    std::exception_ptr e;
    {
      const std::lock_guard<std::mutex> lock(t.error_mutex_);
      std::swap(e, t.error_);
    }
    std::rethrow_exception(e);
  }
}

}  // namespace cbtc::util
