// Intra-instance parallelism: parallel_for and deterministic
// block-ordered reduction over the process-wide executor.
//
// The batch layer (api/engine.cpp) fans whole instances across
// threads; this utility parallelizes *inside* one instance — the
// per-node cone-growth loop of the oracle, the per-edge optimization
// passes, the per-node metric loops — without giving up
// reproducibility. The determinism recipe is the same seed-block
// pattern the batch reducer uses:
//
//   * parallel_for writes each index's result into its own slot, so
//     the outcome is independent of scheduling by construction;
//   * reduce() folds a FIXED block size (`reduce_block`, independent of
//     the thread count) into per-block partials and merges the
//     partials in block order, so floating-point sums are bitwise
//     identical whether 1 or 64 threads ran the loop.
//
// A thread_pool owns no threads: it is a thin view over the
// process-wide util::executor (executor.h) carrying only a width — the
// maximum number of threads that may work one of its loops at once.
// Construction is free, pools nest (a loop body may drive its own
// pool; the executor composes the two by task submission instead of
// spawning width x width threads), and a pool with num_threads == 1
// runs everything inline on the calling thread, so `intra_threads = 1`
// (the default) is exactly the old serial code path.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace cbtc::util {

/// Resolves a thread-count knob: 0 means "hardware concurrency",
/// anything else is clamped to at least 1.
[[nodiscard]] unsigned resolve_threads(unsigned requested);

/// Fixed work-block size for deterministic reductions. Independent of
/// the thread count on purpose — see the header comment.
inline constexpr std::size_t reduce_block = 1024;

/// A per-run handle on the process-wide executor: parallel_for /
/// reduce calls fan across at most `size()` threads (the caller plus
/// executor workers). Loops block until complete; nested use from
/// inside a loop body is supported (and is how batch-level and
/// intra-instance parallelism compose).
class thread_pool {
 public:
  /// A view of width resolve_threads(num_threads); spawns nothing.
  explicit thread_pool(unsigned num_threads) : width_(resolve_threads(num_threads)) {}

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Maximum threads that execute one of this pool's loops (the
  /// calling thread participates in every loop).
  [[nodiscard]] unsigned size() const { return width_; }

  /// Runs body(i) for every i in [0, n), in parallel, and blocks until
  /// all are done. The first exception thrown by any body is rethrown
  /// on the caller (remaining work is abandoned).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Runs body(lo, hi) over [0, n) split into chunks of `chunk`
  /// indices. parallel_for is this with per-index chunks coalesced.
  void parallel_for_chunks(std::size_t n, std::size_t chunk,
                           const std::function<void(std::size_t, std::size_t)>& body);

  /// Deterministic block-ordered reduction: partials[b] =
  /// per_block(lo_b, hi_b) over fixed `reduce_block`-sized blocks, then
  /// merge(total, partials[b]) in ascending block order. The result
  /// does not depend on the pool width.
  template <class T, class PerBlock, class Merge>
  [[nodiscard]] T reduce(std::size_t n, T init, const PerBlock& per_block, const Merge& merge) {
    if (n == 0) return init;
    const std::size_t blocks = (n + reduce_block - 1) / reduce_block;
    std::vector<T> partials(blocks, init);
    parallel_for_chunks(n, reduce_block, [&](std::size_t lo, std::size_t hi) {
      partials[lo / reduce_block] = per_block(lo, hi);
    });
    T total = std::move(init);
    for (const T& p : partials) merge(total, p);
    return total;
  }

 private:
  unsigned width_;
};

}  // namespace cbtc::util
