// Intra-instance parallelism: a small thread pool with parallel_for
// and deterministic block-ordered reduction.
//
// The batch layer (api/engine.cpp) fans whole instances across
// threads; this utility parallelizes *inside* one instance — the
// per-node cone-growth loop of the oracle, the per-node metric loops —
// without giving up reproducibility. The determinism recipe is the
// same seed-block pattern the batch reducer uses:
//
//   * parallel_for writes each index's result into its own slot, so
//     the outcome is independent of scheduling by construction;
//   * reduce() folds a FIXED block size (`reduce_block`, independent of
//     the thread count) into per-block partials and merges the
//     partials in block order, so floating-point sums are bitwise
//     identical whether 1 or 64 threads ran the loop.
//
// A pool with num_threads == 1 spawns no workers and runs everything
// inline on the calling thread, so `intra_threads = 1` (the default)
// is exactly the old serial code path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace cbtc::util {

/// Resolves a thread-count knob: 0 means "hardware concurrency",
/// anything else is clamped to at least 1.
[[nodiscard]] unsigned resolve_threads(unsigned requested);

/// Fixed work-block size for deterministic reductions. Independent of
/// the thread count on purpose — see the header comment.
inline constexpr std::size_t reduce_block = 1024;

/// A blocking fork-join pool: workers are spawned once and reused for
/// every parallel_for / reduce call on this pool. Not thread-safe —
/// one caller drives one pool (calls from inside a body deadlock).
class thread_pool {
 public:
  /// Spawns `resolve_threads(num_threads) - 1` workers (the calling
  /// thread participates in every loop).
  explicit thread_pool(unsigned num_threads);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Total threads that execute a loop (workers + the caller).
  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs body(i) for every i in [0, n), in parallel, and blocks until
  /// all are done. The first exception thrown by any body is rethrown
  /// on the caller (remaining work is abandoned).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Runs body(lo, hi) over [0, n) split into chunks of `chunk`
  /// indices. parallel_for is this with per-index chunks coalesced.
  void parallel_for_chunks(std::size_t n, std::size_t chunk,
                           const std::function<void(std::size_t, std::size_t)>& body);

  /// Deterministic block-ordered reduction: partials[b] =
  /// per_block(lo_b, hi_b) over fixed `reduce_block`-sized blocks, then
  /// merge(total, partials[b]) in ascending block order. The result
  /// does not depend on the pool size.
  template <class T, class PerBlock, class Merge>
  [[nodiscard]] T reduce(std::size_t n, T init, const PerBlock& per_block, const Merge& merge) {
    if (n == 0) return init;
    const std::size_t blocks = (n + reduce_block - 1) / reduce_block;
    std::vector<T> partials(blocks, init);
    parallel_for_chunks(n, reduce_block, [&](std::size_t lo, std::size_t hi) {
      partials[lo / reduce_block] = per_block(lo, hi);
    });
    T total = std::move(init);
    for (const T& p : partials) merge(total, p);
    return total;
  }

 private:
  struct job {
    std::size_t num_chunks{0};
    std::size_t chunk{0};
    std::size_t n{0};
    const std::function<void(std::size_t, std::size_t)>* body{nullptr};
    std::atomic<std::size_t> next{0};
    int active{0};  // workers currently inside this job (guarded by mutex_)
  };

  void work_on(job& j);

  std::vector<std::thread> workers_;
  // Worker rendezvous: generation bumps when a new job is posted.
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_{0};
  job* current_{nullptr};
  bool stop_{false};
  std::exception_ptr error_;
  std::mutex error_mutex_;
};

}  // namespace cbtc::util
