// Process-wide task executor shared by every parallel layer.
//
// Before this existed, each layer owned its threads: the batch runner
// spawned `--threads` workers per sweep and every `thread_pool`
// spawned `intra_threads - 1` workers per engine run, so
// `run_batch --threads 8 --intra-threads 8` could stand up 8 x 8
// threads fighting over the same cores. Now there is exactly one pool
// of workers per process — the `executor` singleton — and both layers
// submit chunked tasks to it. `util::thread_pool` (parallel.h) is a
// thin per-run view: it carries a width (how many threads may work a
// task at once) but owns no threads.
//
// Scheduling is help-first fork-join with work-stealing nesting:
//
//   * The thread that submits a task participates: it claims and runs
//     chunks of its own task first.
//   * When its own chunks are all claimed but stragglers are still
//     running, it does not block — it steals chunks from *other*
//     pending tasks (typically: a batch worker finishing a seed block
//     early helps another instance's intra-parallel loop). Only when
//     no claimable work exists anywhere does it sleep.
//   * A worker running a chunk that itself submits a task (an engine
//     run inside a batch doing an intra-parallel loop) recursively
//     becomes a submitter — nesting composes instead of spawning.
//
// Workers are spawned on demand up to the largest width any task ever
// asked for (capped at max_workers), so an explicit `--threads 8` on a
// 2-core box still gets 8-way task structure without a per-run spawn,
// and repeated runs reuse the same sleeping workers.
//
// Determinism is unaffected by any of this: callers only ever submit
// loops whose chunks write disjoint slots or reduce over fixed-size
// blocks merged in block order (see parallel.h), so which thread ran a
// chunk is unobservable in the results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cbtc::util {

class executor {
 public:
  /// Hard cap on spawned workers (an explicit-width request beyond
  /// this still completes, just with fewer helpers).
  static constexpr unsigned max_workers = 256;

  /// The process-wide instance. Created lazily; workers are joined at
  /// process exit.
  [[nodiscard]] static executor& instance();

  /// One chunked parallel loop: body(lo, hi) over [0, n) in chunks of
  /// `chunk` indices. Stack-allocated by the submitting caller; dead
  /// when run() returns.
  class task {
   public:
    task(std::size_t n, std::size_t chunk,
         const std::function<void(std::size_t, std::size_t)>* body, unsigned width)
        : n_(n),
          chunk_(chunk),
          num_chunks_((n + chunk - 1) / chunk),
          unfinished_(num_chunks_),
          body_(body),
          width_(width) {}

    task(const task&) = delete;
    task& operator=(const task&) = delete;

   private:
    friend class executor;

    std::size_t n_;
    std::size_t chunk_;
    std::size_t num_chunks_;
    std::atomic<std::size_t> next_{0};        // next unclaimed chunk
    std::atomic<std::size_t> unfinished_;     // chunks not yet completed
    const std::function<void(std::size_t, std::size_t)>* body_;
    unsigned width_;    // max threads on this task (incl. the owner)
    unsigned helpers_{0};  // attached non-owner threads (guarded by executor mutex)
    std::exception_ptr error_;  // first exception (guarded by error_mutex_)
    std::mutex error_mutex_;
    task* next_task_{nullptr};  // intrusive list link (guarded by executor mutex)
    task* prev_task_{nullptr};
  };

  /// Runs `t` to completion on the calling thread plus up to
  /// `t.width_ - 1` executor workers, then rethrows the first
  /// exception any chunk threw. Reentrant: chunks may call run() for
  /// nested tasks.
  void run(task& t);

  /// Workers currently spawned (grows on demand; for tests/telemetry).
  [[nodiscard]] unsigned workers() const;

 private:
  executor() = default;
  ~executor();

  /// Claims and runs chunks of `t` until none are left; routes
  /// exceptions into `t`. Returns after the last claimable chunk.
  void drain(task& t);
  /// Runs one chunk [lo, hi); called with the claim already made.
  void run_chunk(task& t, std::size_t c);
  /// A task with an unclaimed chunk and spare width, or nullptr.
  /// Caller must hold mutex_. `skip` is excluded (the caller's own
  /// task, already drained).
  [[nodiscard]] task* claimable(const task* skip);
  /// Grows the worker set toward `width - 1` helpers (under mutex_).
  void ensure_workers(unsigned width);
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;  // workers: work available; owners: task done
  task* head_{nullptr};         // active-task list (round-robin scan)
  std::vector<std::thread> workers_;
  bool stop_{false};
};

}  // namespace cbtc::util
