#include "util/parallel.h"

#include <algorithm>
#include <thread>

#include "util/executor.h"

namespace cbtc::util {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return std::max(1u, requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void thread_pool::parallel_for_chunks(std::size_t n, std::size_t chunk,
                                      const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  chunk = std::max<std::size_t>(1, chunk);
  const std::size_t num_chunks = (n + chunk - 1) / chunk;

  if (width_ == 1 || num_chunks == 1) {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t lo = c * chunk;
      body(lo, std::min(n, lo + chunk));
    }
    return;
  }

  executor::task t(n, chunk, &body, width_);
  executor::instance().run(t);
}

void thread_pool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  // Coalesce indices so tiny bodies do not pay one std::function call
  // and one atomic claim each; per-slot writes keep determinism
  // regardless of the chunking.
  const std::size_t chunk = std::clamp<std::size_t>(n / (std::size_t{size()} * 8), 1, 256);
  parallel_for_chunks(n, chunk, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

}  // namespace cbtc::util
