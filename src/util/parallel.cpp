#include "util/parallel.h"

#include <algorithm>

namespace cbtc::util {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return std::max(1u, requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

thread_pool::thread_pool(unsigned num_threads) {
  const unsigned total = resolve_threads(num_threads);
  workers_.reserve(total - 1);
  for (unsigned t = 1; t < total; ++t) {
    workers_.emplace_back([this] {
      std::uint64_t seen = 0;
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job* j = current_;
        if (j == nullptr) continue;  // job already finished and retired
        ++j->active;
        lock.unlock();
        work_on(*j);
        lock.lock();
        --j->active;
        done_cv_.notify_all();
      }
    });
  }
}

thread_pool::~thread_pool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void thread_pool::work_on(job& j) {
  for (;;) {
    const std::size_t c = j.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= j.num_chunks) return;
    const std::size_t lo = c * j.chunk;
    const std::size_t hi = std::min(j.n, lo + j.chunk);
    try {
      (*j.body)(lo, hi);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      if (!error_) error_ = std::current_exception();
      j.next.store(j.num_chunks, std::memory_order_relaxed);  // abandon the rest
    }
  }
}

void thread_pool::parallel_for_chunks(std::size_t n, std::size_t chunk,
                                      const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  chunk = std::max<std::size_t>(1, chunk);
  const std::size_t num_chunks = (n + chunk - 1) / chunk;

  if (workers_.empty() || num_chunks == 1) {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t lo = c * chunk;
      body(lo, std::min(n, lo + chunk));
    }
    return;
  }

  job j;
  j.num_chunks = num_chunks;
  j.chunk = chunk;
  j.n = n;
  j.body = &body;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    current_ = &j;
    ++generation_;
  }
  start_cv_.notify_all();
  work_on(j);  // the caller participates; returns once every chunk is claimed
  {
    // Workers may still be running chunks they claimed; `j` must stay
    // alive (and current_ must stop pointing at it) until they are out.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return j.active == 0; });
    current_ = nullptr;
  }
  if (error_) {
    std::exception_ptr e;
    {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      std::swap(e, error_);
    }
    std::rethrow_exception(e);
  }
}

void thread_pool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  // Coalesce indices so tiny bodies do not pay one std::function call
  // and one atomic claim each; per-slot writes keep determinism
  // regardless of the chunking.
  const std::size_t chunk = std::clamp<std::size_t>(n / (std::size_t{size()} * 8), 1, 256);
  parallel_for_chunks(n, chunk, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

}  // namespace cbtc::util
