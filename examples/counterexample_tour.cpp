// A guided tour of the paper's two analytic constructions:
//
//   * Example 2.1 (Figure 2): why G_alpha must be the *symmetric
//     closure* of the neighbor relation — N_alpha itself is asymmetric
//     for 2*pi/3 < alpha <= 5*pi/6.
//   * Figure 5 (Theorem 2.4): why 5*pi/6 is tight — an 8-node network,
//     connected under max power, that CBTC(5*pi/6 + eps) disconnects.
//
//   $ ./counterexample_tour
#include <iostream>

#include "algo/gadgets.h"
#include "algo/oracle.h"
#include "geom/angle.h"
#include "graph/euclidean.h"
#include "graph/graph_io.h"
#include "graph/traversal.h"
#include "radio/power_model.h"

int main() {
  using namespace cbtc;
  using algo::gadgets::example21;
  using algo::gadgets::figure5;

  std::cout << "=== Example 2.1: N_alpha is not symmetric ===\n\n";
  const example21 ex = algo::gadgets::make_example21(algo::alpha_five_pi_six);
  const radio::power_model pm(2.0, ex.max_range);
  algo::cbtc_params params;
  params.alpha = ex.alpha;
  params.mode = algo::growth_mode::continuous;

  const algo::cbtc_result r = run_cbtc(ex.positions, pm, params);
  auto describe = [&](graph::node_id id, const char* name) {
    const auto& n = r.nodes[id];
    std::cout << "  " << name << " discovered {";
    for (std::size_t i = 0; i < n.neighbors.size(); ++i) {
      std::cout << (i ? ", " : "") << n.neighbors[i].id;
    }
    std::cout << "}  final power " << n.final_power << (n.boundary ? "  (boundary node)" : "")
              << "\n";
  };
  describe(example21::u0, "u0");
  describe(example21::v, "v ");
  std::cout << "\n  d(u0, v) = R = " << ex.max_range
            << ": the edge exists in G_R, but u0's cones are already\n"
            << "  covered by u1, u2, u3 at lower power, so (u0,v) is not in N_alpha while\n"
            << "  (v,u0) is — v hears u0 only because v grew all the way to max power.\n"
            << "  Taking the symmetric closure restores the edge: "
            << (r.symmetric_closure().has_edge(example21::u0, example21::v) ? "yes" : "no")
            << "\n  The symmetric *core* (op2) would drop it -> disconnection, which is\n"
            << "  why asymmetric edge removal demands alpha <= 2*pi/3.\n\n";

  std::cout << "=== Figure 5: alpha = 5*pi/6 is tight ===\n\n";
  const double eps = 0.1;
  const figure5 fig = algo::gadgets::make_figure5(eps);
  const radio::power_model pm5(2.0, fig.max_range);
  const auto gr = graph::build_max_power_graph(fig.positions, fig.max_range);
  std::cout << "  8 nodes, two clusters; the only inter-cluster G_R edge is (u0, v0).\n"
            << "  G_R connected: " << (graph::is_connected(gr) ? "yes" : "no") << "\n\n";

  algo::cbtc_params above;
  above.alpha = fig.alpha;  // 5*pi/6 + eps
  above.mode = algo::growth_mode::continuous;
  const auto r_above = run_cbtc(fig.positions, pm5, above);
  const auto g_above = r_above.symmetric_closure();
  std::cout << "  CBTC(5*pi/6 + " << eps << "):\n"
            << "    u0 stops at power " << r_above.nodes[figure5::u0].final_power << " < P = "
            << pm5.max_power() << " — its satellites close every cone of degree alpha,\n"
            << "    so it never discovers v0. Same for v0 by symmetry.\n"
            << "    u0 connected to v0 in G_alpha: "
            << (graph::reachable(g_above, figure5::u0, figure5::v0) ? "yes" : "NO — disconnected!")
            << "\n\n";

  algo::cbtc_params at;
  at.alpha = algo::alpha_five_pi_six;
  at.mode = algo::growth_mode::continuous;
  const auto g_at = run_cbtc(fig.positions, pm5, at).symmetric_closure();
  std::cout << "  CBTC(5*pi/6) on the same layout:\n"
            << "    now the u1-u2 gap (5*pi/6 + eps wide) exceeds alpha, u0 keeps growing,\n"
            << "    reaches v0, and connectivity survives: "
            << (graph::reachable(g_at, figure5::u0, figure5::v0) ? "yes" : "no") << "\n\n";

  graph::save_svg("figure5_gadget.svg", gr, fig.positions,
                  {{-600.0, -600.0}, {1100.0, 600.0}},
                  {.node_labels = true, .title = "Figure 5 gadget (G_R)"});
  std::cout << "wrote figure5_gadget.svg (the max-power graph of the gadget)\n";
  return 0;
}
