// A guided tour of the paper's two analytic constructions:
//
//   * Example 2.1 (Figure 2): why G_alpha must be the *symmetric
//     closure* of the neighbor relation — N_alpha itself is asymmetric
//     for 2*pi/3 < alpha <= 5*pi/6.
//   * Figure 5 (Theorem 2.4): why 5*pi/6 is tight — an 8-node network,
//     connected under max power, that CBTC(5*pi/6 + eps) disconnects.
//
// Both gadgets run through the cbtc::api engine as fixed-position
// scenarios; the run_report's growth outcome exposes the per-node
// neighbor sets the arguments are about.
//
//   $ ./counterexample_tour
#include <iostream>

#include "algo/gadgets.h"
#include "api/api.h"
#include "geom/angle.h"
#include "graph/graph_io.h"
#include "graph/traversal.h"

namespace {

using namespace cbtc;

/// A gadget as a scenario: fixed positions, continuous growth (the
/// analytic constructions assume idealized power growth), no
/// optimizations, no batch metrics.
api::scenario_spec gadget_spec(std::vector<geom::vec2> positions, double alpha,
                               double max_range) {
  api::scenario_spec spec;
  spec.deploy = api::deployment_spec::fixed_positions(std::move(positions));
  spec.radio.max_range = max_range;
  spec.cbtc.alpha = alpha;
  spec.cbtc.mode = algo::growth_mode::continuous;
  spec.metrics = {.stretch = false, .interference = false, .robustness = false};
  return spec;
}

}  // namespace

int main() {
  using algo::gadgets::example21;
  using algo::gadgets::figure5;

  const api::engine eng;

  std::cout << "=== Example 2.1: N_alpha is not symmetric ===\n\n";
  const example21 ex = algo::gadgets::make_example21(algo::alpha_five_pi_six);
  const api::run_report r21 = eng.run(gadget_spec(ex.positions, ex.alpha, ex.max_range));

  auto describe = [&r21](graph::node_id id, const char* name) {
    const auto& n = r21.growth.nodes[id];
    std::cout << "  " << name << " discovered {";
    for (std::size_t i = 0; i < n.neighbors.size(); ++i) {
      std::cout << (i ? ", " : "") << n.neighbors[i].id;
    }
    std::cout << "}  final power " << n.final_power << (n.boundary ? "  (boundary node)" : "")
              << "\n";
  };
  describe(example21::u0, "u0");
  describe(example21::v, "v ");
  std::cout << "\n  d(u0, v) = R = " << ex.max_range
            << ": the edge exists in G_R, but u0's cones are already\n"
            << "  covered by u1, u2, u3 at lower power, so (u0,v) is not in N_alpha while\n"
            << "  (v,u0) is — v hears u0 only because v grew all the way to max power.\n"
            << "  Taking the symmetric closure restores the edge: "
            << (r21.topology.has_edge(example21::u0, example21::v) ? "yes" : "no")
            << "\n  The symmetric *core* (op2) would drop it -> disconnection, which is\n"
            << "  why asymmetric edge removal demands alpha <= 2*pi/3.\n\n";

  std::cout << "=== Figure 5: alpha = 5*pi/6 is tight ===\n\n";
  const double eps = 0.1;
  const figure5 fig = algo::gadgets::make_figure5(eps);

  api::scenario_spec gr_spec = gadget_spec(fig.positions, fig.alpha, fig.max_range);
  gr_spec.method = api::method_spec::of_baseline(api::baseline_kind::max_power);
  const api::run_report r_gr = eng.run(gr_spec);

  api::scenario_spec above = gadget_spec(fig.positions, fig.alpha, fig.max_range);
  const api::run_report r_above = eng.run(above);
  std::cout << "  8 nodes, two clusters; the only inter-cluster G_R edge is (u0, v0).\n"
            << "  G_R connected: " << (graph::is_connected(r_gr.topology) ? "yes" : "no")
            << "\n\n";

  std::cout << "  CBTC(5*pi/6 + " << eps << "):\n"
            << "    u0 stops at power " << r_above.growth.nodes[figure5::u0].final_power
            << " < P = " << above.power().max_power()
            << " — its satellites close every cone of degree alpha,\n"
            << "    so it never discovers v0. Same for v0 by symmetry.\n"
            << "    u0 connected to v0 in G_alpha: "
            << (graph::reachable(r_above.topology, figure5::u0, figure5::v0)
                    ? "yes"
                    : "NO — disconnected!")
            << "\n\n";

  api::scenario_spec at = gadget_spec(fig.positions, algo::alpha_five_pi_six, fig.max_range);
  const api::run_report r_at = eng.run(at);
  std::cout << "  CBTC(5*pi/6) on the same layout:\n"
            << "    now the u1-u2 gap (5*pi/6 + eps wide) exceeds alpha, u0 keeps growing,\n"
            << "    reaches v0, and connectivity survives: "
            << (graph::reachable(r_at.topology, figure5::u0, figure5::v0) ? "yes" : "no")
            << "\n\n";

  graph::save_svg("figure5_gadget.svg", r_gr.topology, fig.positions,
                  {{-600.0, -600.0}, {1100.0, 600.0}},
                  {.node_labels = true, .title = "Figure 5 gadget (G_R)"});
  std::cout << "wrote figure5_gadget.svg (the max-power graph of the gadget)\n";
  return 0;
}
