// Mobile ad-hoc scenario: random-waypoint mobility over a lossy,
// jittery, duplicating channel — the full Section 4 asynchronous model.
//
// Nodes keep moving; the NDP's beacons feed join/leave/aChange events
// into the reconfiguration rules, and we sample connectivity over time
// to watch the topology track the motion.
//
//   $ ./mobile_adhoc [nodes] [seed]
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/metrics.h"
#include "graph/traversal.h"
#include "proto/reconfig.h"
#include "sim/mobility.h"

int main(int argc, char** argv) {
  using namespace cbtc;

  const std::size_t nodes = argc > 1 ? std::stoul(argv[1]) : 40;
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 3;

  const radio::power_model radio(2.0, 500.0);
  const geom::bbox region = geom::bbox::rect(1200.0, 1200.0);
  const auto positions = geom::uniform_points(nodes, region, seed);

  sim::simulator simulator;
  // Imperfect channel: 5% loss, 2% duplication, jitter.
  radio::channel_params ch;
  ch.drop_prob = 0.05;
  ch.dup_prob = 0.02;
  ch.base_delay = 0.01;
  ch.jitter_max = 0.02;
  sim::medium medium(simulator, radio, radio::channel(ch, seed));

  proto::reconfig_config cfg;
  cfg.agent.round_timeout = 0.3;
  cfg.agent.retries_per_level = 2;  // ride out hello/ack loss
  cfg.ndp.beacon_interval = 1.0;
  cfg.ndp.miss_limit = 4;           // tolerate a lost beacon or two
  cfg.ndp.achange_threshold = 0.08;

  std::vector<std::unique_ptr<proto::reconfig_agent>> agents;
  for (const auto& p : positions) {
    const auto id = medium.add_node(p, {});
    agents.push_back(std::make_unique<proto::reconfig_agent>(medium, id, cfg));
  }

  const double horizon = 200.0;
  for (auto& a : agents) a->start(horizon);

  sim::random_waypoint mobility(
      medium, {.region = region, .min_speed = 2.0, .max_speed = 6.0, .pause = 5.0}, seed ^ 0xf00);
  mobility.start(0.5, 160.0);  // move until t=160, then settle

  auto live_topology = [&] {
    graph::undirected_graph g(nodes);
    for (graph::node_id u = 0; u < nodes; ++u) {
      for (const auto& [v, info] : agents[u]->cbtc().neighbors()) g.add_edge(u, v);
    }
    return g;
  };

  std::cout << "t      edges  avgdeg  avgradius  connectivity==G_R\n";
  for (double t = 20.0; t <= horizon; t += 20.0) {
    simulator.run_until(t);
    const auto topo = live_topology();
    const auto gr = graph::build_max_power_graph(medium.positions(), radio.max_range());
    std::cout << std::setw(5) << t << "  " << std::setw(5) << topo.num_edges() << "  "
              << std::setw(6) << std::fixed << std::setprecision(2)
              << graph::average_degree(topo) << "  " << std::setw(9)
              << graph::average_radius(topo, medium.positions(), radio.max_range()) << "  "
              << (graph::same_connectivity(topo, gr) ? "yes" : "catching up") << "\n";
  }

  std::uint64_t joins = 0, leaves = 0, achanges = 0, regrows = 0;
  for (const auto& a : agents) {
    joins += a->stats().joins;
    leaves += a->stats().leaves;
    achanges += a->stats().achanges;
    regrows += a->stats().regrows;
  }
  std::cout << "\nreconfiguration events over the run:\n"
            << "  joins: " << joins << "  leaves: " << leaves << "  aChanges: " << achanges
            << "  regrows: " << regrows << "\n"
            << "channel: " << medium.stats().drops << " messages lost, "
            << medium.stats().deliveries << " delivered\n";

  // After motion stops the algorithm must converge (the paper's
  // stabilization argument): final check.
  const auto topo = live_topology();
  const auto gr = graph::build_max_power_graph(medium.positions(), radio.max_range());
  const bool ok = graph::same_connectivity(topo, gr);
  std::cout << "final (motion stopped at t=160): connectivity "
            << (ok ? "preserved" : "NOT preserved") << "\n";
  return ok ? 0 : 1;
}
