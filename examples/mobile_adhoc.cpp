// Mobile ad-hoc scenario: random-waypoint mobility over a lossy,
// jittery, duplicating channel — the full Section 4 asynchronous model.
//
// Nodes keep moving; the NDP's beacons feed join/leave/aChange events
// into the reconfiguration rules, and the engine samples connectivity
// over time so we can watch the topology track the motion. The whole
// run is one scenario_spec + sim_spec handed to engine::run_dynamic.
//
//   $ ./mobile_adhoc [nodes] [seed]
#include <iomanip>
#include <iostream>
#include <string>

#include "api/api.h"

int main(int argc, char** argv) {
  using namespace cbtc;

  const std::size_t nodes = argc > 1 ? std::stoul(argv[1]) : 40;
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 3;

  api::scenario_spec spec;
  spec.deploy = {.kind = api::deployment_kind::uniform, .nodes = nodes, .region_side = 1200.0};
  spec.base_seed = seed;
  // Imperfect channel: 5% loss, 2% duplication, jitter.
  spec.protocol.channel.drop_prob = 0.05;
  spec.protocol.channel.dup_prob = 0.02;
  spec.protocol.channel.base_delay = 0.01;
  spec.protocol.channel.jitter_max = 0.02;
  spec.protocol.agent.round_timeout = 0.3;
  spec.protocol.agent.retries_per_level = 2;  // ride out hello/ack loss

  api::sim_spec dyn;
  dyn.horizon = 200.0;
  dyn.settle = 20.0;
  dyn.sample_every = 20.0;
  dyn.beacons = {.interval = 1.0,
                 .miss_limit = 4,  // tolerate a lost beacon or two
                 .achange_threshold = 0.08};
  dyn.mobility = {.kind = api::mobility_kind::random_waypoint,
                  .min_speed = 2.0,
                  .max_speed = 6.0,
                  .pause = 5.0,
                  .tick = 0.5,
                  .start = 0.0,
                  .until = 160.0};  // move until t=160, then settle

  const api::engine eng;
  const api::dynamic_report r = eng.run_dynamic(spec, dyn);

  std::cout << "t      edges  avgdeg  avgradius  connectivity==G_R\n";
  for (const api::dynamic_sample& s : r.samples) {
    std::cout << std::setw(5) << s.t << "  " << std::setw(5) << s.edges << "  " << std::setw(6)
              << std::fixed << std::setprecision(2) << s.avg_degree << "  " << std::setw(9)
              << s.avg_radius << "  " << (s.connectivity_ok ? "yes" : "catching up") << "\n";
  }

  std::cout << "\nreconfiguration events over the run:\n"
            << "  joins: " << r.joins << "  leaves: " << r.leaves << "  aChanges: " << r.achanges
            << "  regrows: " << r.regrows << "\n"
            << "channel: " << r.channel.drops << " messages lost, " << r.channel.deliveries
            << " delivered\n";
  if (r.disruptions > 0) {
    std::cout << "disruptions repaired: " << r.disruptions
              << " (max repair latency: " << r.repair_latency_max << ")\n";
  }

  // After motion stops the algorithm must converge (the paper's
  // stabilization argument): final check.
  std::cout << "final (motion stopped at t=" << dyn.mobility.until << "): connectivity "
            << (r.final_connectivity_ok ? "preserved" : "NOT preserved") << "\n";
  return r.final_connectivity_ok ? 0 : 1;
}
