// Quickstart: run CBTC(5*pi/6) with all optimizations on a random
// network and inspect the result.
//
//   $ ./quickstart [nodes] [seed]
//
// This is the five-minute tour of the public API:
//   1. place nodes,
//   2. choose a radio power model,
//   3. build the topology (growth + optimizations),
//   4. check the paper's guarantees,
//   5. export an SVG you can open in a browser.
#include <iostream>
#include <string>

#include "algo/analysis.h"
#include "algo/pipeline.h"
#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/graph_io.h"
#include "graph/metrics.h"

int main(int argc, char** argv) {
  using namespace cbtc;

  const std::size_t nodes = argc > 1 ? std::stoul(argv[1]) : 100;
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 1;

  // 1. One hundred nodes, uniform in a 1500 x 1500 field (the paper's
  //    evaluation setup).
  const geom::bbox region = geom::bbox::rect(1500.0, 1500.0);
  const std::vector<geom::vec2> positions = geom::uniform_points(nodes, region, seed);

  // 2. Radio: power p(d) = d^2, maximum range R = 500 (so max power
  //    P = p(500)).
  const radio::power_model radio(2.0, 500.0);

  // 3. CBTC(alpha = 5*pi/6) + shrink-back + pairwise edge removal.
  //    (Asymmetric removal is requested too; the pipeline skips it
  //    automatically because it requires alpha <= 2*pi/3.)
  algo::cbtc_params params;  // defaults: alpha = 5*pi/6, Increase(p) = 2p
  const algo::topology_result result =
      algo::build_topology(positions, radio, params, algo::optimization_set::all());

  // 4. The guarantees from the paper, checked at runtime.
  const algo::invariant_report report =
      algo::check_invariants(result.topology, positions, radio.max_range());

  const auto gr = graph::build_max_power_graph(positions, radio.max_range());
  std::cout << "nodes:                  " << nodes << "\n"
            << "G_R edges (max power):  " << gr.num_edges() << "\n"
            << "topology edges:         " << result.topology.num_edges() << "\n"
            << "avg degree:             " << graph::average_degree(result.topology) << " (G_R: "
            << graph::average_degree(gr) << ")\n"
            << "avg radius:             "
            << graph::average_radius(result.topology, positions, radio.max_range())
            << " (max power: " << radio.max_range() << ")\n"
            << "redundant edges removed: " << result.removed_edges << "\n"
            << "boundary nodes:         " << result.growth.boundary_count() << "\n"
            << "connectivity preserved: " << (report.connectivity_preserved ? "yes" : "NO") << "\n"
            << "subgraph of G_R:        " << (report.subgraph_of_max_power ? "yes" : "NO") << "\n"
            << "all radii <= R:         " << (report.radii_within_max_range ? "yes" : "NO") << "\n";

  // 5. Visualize.
  graph::svg_style style;
  style.title = "CBTC(5pi/6), all optimizations";
  graph::save_svg("quickstart_topology.svg", result.topology, positions, region, style);
  std::cout << "wrote quickstart_topology.svg\n";
  return report.ok() ? 0 : 1;
}
