// Quickstart: run CBTC(5*pi/6) with all optimizations on a random
// network and inspect the result.
//
//   $ ./quickstart [nodes] [seed]
//
// This is the five-minute tour of the cbtc::api façade:
//   1. describe the scenario (deployment, radio, method, parameters),
//   2. run it through the engine,
//   3. read the unified report (metrics + the paper's guarantees),
//   4. export an SVG you can open in a browser.
#include <iostream>
#include <string>

#include "api/api.h"
#include "graph/graph_io.h"

int main(int argc, char** argv) {
  using namespace cbtc;

  const std::size_t nodes = argc > 1 ? std::stoul(argv[1]) : 100;
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 1;

  // 1. The scenario: `nodes` nodes uniform in a 1500 x 1500 field (the
  //    paper's evaluation setup), radio p(d) = d^2 with max range 500,
  //    CBTC(alpha = 5*pi/6) + all optimizations. (Asymmetric removal is
  //    requested too; the engine skips it automatically because it
  //    requires alpha <= 2*pi/3.)
  api::scenario_spec spec;
  spec.deploy = {.kind = api::deployment_kind::uniform, .nodes = nodes, .region_side = 1500.0};
  spec.radio = {.path_loss_exponent = 2.0, .max_range = 500.0};
  spec.opts = algo::optimization_set::all();
  spec.base_seed = seed;

  // 2. Run it.
  const api::engine eng;
  const api::run_report r = eng.run(spec);

  // 3. One report: metrics plus the guarantees from the paper, checked
  //    at runtime.
  std::cout << "nodes:                  " << r.nodes << "\n"
            << "G_R edges (max power):  " << r.max_power_edges << "\n"
            << "topology edges:         " << r.edges << "\n"
            << "avg degree:             " << r.avg_degree << "\n"
            << "avg radius:             " << r.avg_radius << " (max power: "
            << spec.radio.max_range << ")\n"
            << "redundant edges removed: " << r.removed_edges << "\n"
            << "boundary nodes:         " << r.boundary_nodes << "\n"
            << "connectivity preserved: "
            << (r.invariants.connectivity_preserved ? "yes" : "NO") << "\n"
            << "subgraph of G_R:        " << (r.invariants.subgraph_of_max_power ? "yes" : "NO")
            << "\n"
            << "all radii <= R:         " << (r.invariants.radii_within_max_range ? "yes" : "NO")
            << "\n";

  // 4. Visualize.
  graph::svg_style style;
  style.title = "CBTC(5pi/6), all optimizations";
  graph::save_svg("quickstart_topology.svg", r.topology, spec.make_positions(0), spec.region(),
                  style);
  std::cout << "wrote quickstart_topology.svg\n";
  return r.invariants.ok() ? 0 : 1;
}
