// Sensor-field scenario: clustered deployment, battery-driven failures,
// and self-healing via the Section 4 reconfiguration protocol.
//
// A sensor network is dropped in gaussian clusters (dense spots, thin
// bridges — the hard case for topology control). Sensors then start
// dying; the NDP notices, nodes regrow their cones, and the network
// keeps the surviving connectivity without any global coordination.
//
//   $ ./sensor_field [sensors] [seed]
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/graph_io.h"
#include "graph/metrics.h"
#include "graph/traversal.h"
#include "proto/reconfig.h"
#include "sim/failure.h"

int main(int argc, char** argv) {
  using namespace cbtc;

  const std::size_t sensors = argc > 1 ? std::stoul(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 7;

  const radio::power_model radio(2.0, 500.0);
  const geom::bbox field = geom::bbox::rect(1800.0, 1800.0);
  const auto positions = geom::clustered_points(sensors, 5, 150.0, field, seed);

  sim::simulator simulator;
  sim::medium medium(simulator, radio);

  proto::reconfig_config cfg;
  cfg.agent.round_timeout = 0.2;
  cfg.ndp.beacon_interval = 1.0;
  cfg.ndp.miss_limit = 3;

  std::vector<std::unique_ptr<proto::reconfig_agent>> agents;
  for (const auto& p : positions) {
    const auto id = medium.add_node(p, {});
    agents.push_back(std::make_unique<proto::reconfig_agent>(medium, id, cfg));
  }

  const double horizon = 150.0;
  for (auto& a : agents) a->start(horizon);
  simulator.run_until(15.0);

  auto live_topology = [&] {
    graph::undirected_graph g(sensors);
    for (graph::node_id u = 0; u < sensors; ++u) {
      if (!medium.is_up(u)) continue;
      for (const auto& [v, info] : agents[u]->cbtc().neighbors()) {
        if (medium.is_up(v)) g.add_edge(u, v);
      }
    }
    return g;
  };
  auto live_gr = [&] {
    const auto full = graph::build_max_power_graph(medium.positions(), radio.max_range());
    std::vector<bool> up(sensors);
    for (graph::node_id u = 0; u < sensors; ++u) up[u] = medium.is_up(u);
    return full.induced(up);
  };

  std::cout << "t=15: initial topology built by the distributed protocol\n"
            << "  live sensors: " << sensors << ", edges: " << live_topology().num_edges()
            << ", avg radius: "
            << graph::average_radius(live_topology(), medium.positions(), radio.max_range())
            << "\n  connectivity == surviving G_R: "
            << (graph::same_connectivity(live_topology(), live_gr()) ? "yes" : "NO") << "\n\n";

  // Batteries start failing: 20% of the sensors die over t in [20, 60].
  sim::failure_injector injector(medium, seed ^ 0xabcdef);
  const auto victims = injector.random_crashes(sensors / 5, 20.0, 60.0);
  std::cout << "scheduling " << victims.size() << " battery failures in t = [20, 60]...\n";

  simulator.run_until(horizon);

  const auto topo = live_topology();
  const auto gr = live_gr();
  std::size_t alive = 0;
  for (graph::node_id u = 0; u < sensors; ++u) {
    if (medium.is_up(u)) ++alive;
  }
  std::uint64_t regrows = 0, leaves = 0;
  for (const auto& a : agents) {
    regrows += a->stats().regrows;
    leaves += a->stats().leaves;
  }

  std::cout << "\nt=" << horizon << ": after failures and self-healing\n"
            << "  live sensors: " << alive << "\n"
            << "  leave events observed: " << leaves << ", cone regrowths: " << regrows << "\n"
            << "  surviving components (G_R): " << graph::connected_components(gr).count
            << ", topology: " << graph::connected_components(topo).count << "\n"
            << "  connectivity == surviving G_R: "
            << (graph::same_connectivity(topo, gr) ? "yes" : "NO") << "\n"
            << "  total broadcasts: " << medium.stats().broadcasts
            << ", unicasts: " << medium.stats().unicasts << "\n";

  graph::save_svg("sensor_field_topology.svg", topo, medium.positions(), field,
                  {.node_labels = false, .title = "sensor field after failures"});
  std::cout << "wrote sensor_field_topology.svg\n";
  return graph::same_connectivity(topo, gr) ? 0 : 1;
}
