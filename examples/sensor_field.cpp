// Sensor-field scenario: clustered deployment, battery-driven failures,
// and self-healing via the Section 4 reconfiguration protocol.
//
// A sensor network is dropped in gaussian clusters (dense spots, thin
// bridges — the hard case for topology control). Sensors then start
// dying; the NDP notices, nodes regrow their cones, and the network
// keeps the surviving connectivity without any global coordination.
// The run is one scenario_spec + sim_spec pair; the SVG at the end is
// rendered from the dynamic_report's final live topology.
//
//   $ ./sensor_field [sensors] [seed]
#include <iostream>
#include <string>

#include "api/api.h"
#include "geom/bbox.h"
#include "graph/graph_io.h"

int main(int argc, char** argv) {
  using namespace cbtc;

  const std::size_t sensors = argc > 1 ? std::stoul(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 7;

  api::scenario_spec spec;
  spec.deploy = {.kind = api::deployment_kind::cluster,
                 .nodes = sensors,
                 .region_side = 1800.0,
                 .clusters = 5,
                 .cluster_sigma = 150.0};
  spec.base_seed = seed;
  spec.protocol.agent.round_timeout = 0.2;

  api::sim_spec dyn;
  dyn.horizon = 150.0;
  dyn.settle = 15.0;
  dyn.sample_every = 15.0;
  dyn.beacons = {.interval = 1.0, .miss_limit = 3};
  // Batteries start failing: 20% of the sensors die over t in [20, 60].
  dyn.failures = {.random_crashes = sensors / 5, .window_begin = 20.0, .window_end = 60.0};

  const api::engine eng;
  const api::dynamic_report r = eng.run_dynamic(spec, dyn);

  std::cout << "t=" << dyn.settle << ": initial topology built by the distributed protocol\n"
            << "  live sensors: " << sensors << ", edges: " << r.initial_edges
            << ", avg radius: " << r.samples.front().avg_radius
            << "\n  connectivity == surviving G_R: "
            << (r.initial_connectivity_ok ? "yes" : "NO") << "\n\n"
            << "scheduling " << dyn.failures.random_crashes
            << " battery failures in t = [20, 60]...\n";

  std::cout << "\nt=" << dyn.horizon << ": after failures and self-healing\n"
            << "  live sensors: " << r.live_nodes << "\n"
            << "  leave events observed: " << r.leaves << ", cone regrowths: " << r.regrows
            << "\n"
            << "  disruptions repaired: " << r.disruptions << " (unrepaired: " << r.unrepaired
            << ")\n"
            << "  field partitioned: "
            << (r.partitioned ? "yes, at t=" + std::to_string(r.time_to_partition) : "no")
            << "\n"
            << "  connectivity == surviving G_R: " << (r.final_connectivity_ok ? "yes" : "NO")
            << "\n"
            << "  total broadcasts: " << r.channel.broadcasts
            << ", unicasts: " << r.channel.unicasts << "\n";

  const geom::bbox field = geom::bbox::rect(spec.deploy.region_side, spec.deploy.region_side);
  graph::save_svg("sensor_field_topology.svg", r.final_topology, r.final_positions, field,
                  {.node_labels = false, .title = "sensor field after failures"});
  std::cout << "wrote sensor_field_topology.svg\n";
  return r.final_connectivity_ok ? 0 : 1;
}
